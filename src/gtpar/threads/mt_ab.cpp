#include "gtpar/threads/mt_ab.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "gtpar/engine/api.hpp"
#include "gtpar/engine/granularity.hpp"
#include "gtpar/engine/tt.hpp"
#include "gtpar/solve/flat_kernels.hpp"

namespace gtpar {
namespace {

void pay_leaf_cost(std::uint64_t ns, LeafCostModel model) {
  if (ns == 0) return;
  if (model == LeafCostModel::kSleep) {
    std::this_thread::sleep_for(std::chrono::nanoseconds(ns));
    return;
  }
  const auto end = std::chrono::steady_clock::now() + std::chrono::nanoseconds(ns);
  while (std::chrono::steady_clock::now() < end) {
  }
}

struct AbShared {
  const Tree& t;
  const MtAbOptions& opt;
  Executor& exec;
  SearchLimits limits;
  std::atomic<std::uint64_t> leaf_evals{0};
  std::atomic<std::uint64_t> retries{0};
  std::atomic<std::uint64_t> faults{0};
  /// Latched stop: set once cancellation, the deadline, or a permanent
  /// leaf fault is observed.
  std::atomic<bool> stop_flag{false};
  std::chrono::steady_clock::time_point deadline{};
  /// Private exact-value memo, one slot per node: bit 40 marks presence,
  /// the low 32 bits hold the value. Only *exact* minimax values are
  /// stored (a value computed without any cutoff below it), so a hit is
  /// usable under any window. This is what makes promotion (abort scout,
  /// re-search in parallel) cheap: the re-search walks the scout's
  /// completed subtrees out of the cache instead of re-paying their
  /// leaves. Empty when a shared TranspositionTable is supplied — the TT
  /// then plays the memo's role across every search sharing it.
  std::vector<std::atomic<std::int64_t>> memo;
  /// Shared TT (null = private memo) and the tree's content fingerprint
  /// for its keys.
  TranspositionTable* tt;
  std::uint64_t fp = 0;
  /// Grain cutoff: sibling subtrees with fewer leaves are never scouted.
  std::uint32_t min_spawn;
  /// Never-set cancel flag for inline flat runs on the spine.
  std::atomic<bool> never{false};

  static constexpr std::int64_t kHasBit = std::int64_t{1} << 40;

  AbShared(const Tree& tree, const MtAbOptions& options, Executor& executor,
           const SearchLimits& lim)
      : t(tree), opt(options), exec(executor), limits(lim),
        memo(options.tt == nullptr ? tree.size() : 0), tt(options.tt),
        min_spawn(min_spawn_leaves(default_grain_policy(), options.grain_ns,
                                   options.leaf_cost_ns)) {
    for (auto& m : memo) m.store(0, std::memory_order_relaxed);
    if (tt != nullptr) fp = tree.fingerprint();
    if (limits.budget_ns != 0)
      deadline = std::chrono::steady_clock::now() +
                 std::chrono::nanoseconds(limits.budget_ns);
  }

  bool stopped() const { return stop_flag.load(std::memory_order_relaxed); }

  bool poll_stop() {
    if (stopped()) return true;
    if ((limits.cancel && limits.cancel->load(std::memory_order_relaxed)) ||
        (limits.budget_ns != 0 && std::chrono::steady_clock::now() >= deadline)) {
      stop_flag.store(true, std::memory_order_relaxed);
      return true;
    }
    return false;
  }

  bool memo_lookup(NodeId v, Value& out) const {
    if (tt != nullptr) return tt->probe(TranspositionTable::node_key(fp, v), out);
    const std::int64_t e = memo[v].load(std::memory_order_acquire);
    if (!(e & kHasBit)) return false;
    out = static_cast<Value>(static_cast<std::uint32_t>(e & 0xFFFFFFFFll));
    return true;
  }

  void memo_store(NodeId v, Value val) {
    if (tt != nullptr) {
      tt->store(TranspositionTable::node_key(fp, v), val, t.subtree_leaves(v));
      return;
    }
    memo[v].store(kHasBit | static_cast<std::uint32_t>(val),
                  std::memory_order_release);
  }

  /// Run the evaluator hook with the retry budget; false latches a stop
  /// (permanent fault) and the search degrades to an anytime bound. See
  /// Shared::run_leaf_hook in mt_solve.cpp.
  bool run_leaf_hook(NodeId leaf) {
    const unsigned attempts = std::max(opt.retry.max_attempts, 1u);
    for (unsigned attempt = 0;; ++attempt) {
      try {
        opt.leaf_hook->on_leaf(leaf, attempt);
        return true;
      } catch (const std::exception& e) {
        faults.fetch_add(1, std::memory_order_relaxed);
        if (attempt + 1 < attempts &&
            (!opt.retry.retry_on || opt.retry.retry_on(e))) {
          retries.fetch_add(1, std::memory_order_relaxed);
          retry_backoff(opt.retry, attempt);
          continue;
        }
      } catch (...) {
        faults.fetch_add(1, std::memory_order_relaxed);
      }
      stop_flag.store(true, std::memory_order_relaxed);
      return false;
    }
  }

  /// Evaluate a leaf through the memo. Returns false on stop; `out`
  /// carries the value on success. With the private memo the CAS dedups
  /// the count (distinct leaves); with a shared TT, replacement may evict
  /// the record, so every paid evaluation counts — multiplicity, the real
  /// cost.
  bool eval_leaf(NodeId leaf, Value& out) {
    if (memo_lookup(leaf, out)) return true;
    if (poll_stop()) return false;
    if (opt.leaf_hook != nullptr && !run_leaf_hook(leaf)) return false;
    pay_leaf_cost(opt.leaf_cost_ns, opt.cost_model);
    const Value v = t.leaf_value(leaf);
    if (tt != nullptr) {
      tt->store(TranspositionTable::node_key(fp, leaf), v, 1);
      leaf_evals.fetch_add(1, std::memory_order_relaxed);
    } else {
      std::int64_t expected = 0;
      if (memo[leaf].compare_exchange_strong(
              expected, kHasBit | static_cast<std::uint32_t>(v),
              std::memory_order_release, std::memory_order_acquire)) {
        leaf_evals.fetch_add(1, std::memory_order_relaxed);
      }
    }
    out = v;
    return true;
  }
};

/// Adapts the shared memo/TT, cost model and cancellation to the flat
/// alpha-beta kernel's context interface (solve/flat_kernels.hpp).
struct AbCtx {
  AbShared& sh;
  const std::atomic<bool>& cancel;
  bool probe(NodeId v, Value& out) const { return sh.memo_lookup(v, out); }
  void store(NodeId v, Value val) const { sh.memo_store(v, val); }
  bool leaf(NodeId v, Value& out) const { return sh.eval_leaf(v, out); }
  bool stop() const {
    return cancel.load(std::memory_order_relaxed) || sh.stopped();
  }
};

/// Sequential fail-soft alpha-beta with a dynamic bound published by the
/// spawning spine (re-read at every node entry), cancellation, and exact
/// memoisation: the flat iterative kernel plugged into the shared state.
/// `exact` is set iff the returned value is the true minimax value of the
/// subtree (no cutoff occurred at or below v).
Value seq_ab(AbShared& sh, NodeId v, Value alpha, Value beta,
             const std::atomic<Value>* dyn, bool dyn_is_alpha,
             const std::atomic<bool>& cancel, bool& exact) {
  AbCtx ctx{sh, cancel};
  return flat_ab_core(sh.t, v, alpha, beta, dyn, dyn_is_alpha, ctx, exact);
}

/// Completion latch with queue-steal, as in mt_solve.cpp.
struct AbScout {
  std::atomic<bool> cancel{false};
  std::atomic<int> state{0};  // 0 queued, 1 running, 2 done
  Value result = 0;
  bool valid = false;  // worker produced a usable fail-soft result
  bool exact = false;  // ... and it is the exact subtree value

  bool claim() {
    int expected = 0;
    return state.compare_exchange_strong(expected, 1, std::memory_order_acq_rel);
  }
  void finish() { state.store(2, std::memory_order_release); }
  bool done() const { return state.load(std::memory_order_acquire) == 2; }
  /// Abort-join; steals the task if it has not started. Returns valid.
  bool join() {
    int expected = 0;
    if (state.compare_exchange_strong(expected, 2, std::memory_order_acq_rel))
      return false;  // never started
    while (!done()) std::this_thread::yield();
    return valid;
  }
};

/// Spine search: full live window, one scout per level on the next
/// sibling, with promotion (P-SOLVE case two) when the scout is still
/// running once the spine catches up.
Value pab(AbShared& sh, NodeId v, Value alpha, Value beta, bool& exact) {
  exact = false;
  {
    Value cached;
    if (sh.memo_lookup(v, cached)) {
      exact = true;
      return cached;
    }
  }
  // Adaptive granularity: a subtree too small to repay a scheduler round
  // trip runs inline through the flat iterative kernel (this also covers
  // leaves under any cutoff > 1).
  if (sh.t.subtree_leaves(v) < sh.min_spawn)
    return seq_ab(sh, v, alpha, beta, nullptr, true, sh.never, exact);
  if (sh.t.is_leaf(v)) {
    Value out = 0;
    if (!sh.eval_leaf(v, out)) return 0;
    exact = true;
    return out;
  }
  const bool maxing = node_kind(sh.t, v) == NodeKind::Max;
  const auto children = sh.t.children(v);
  Value best = maxing ? kMinusInf : kPlusInf;
  bool all_exact = true;
  std::atomic<Value> dyn{maxing ? alpha : beta};

  auto merge = [&](Value r, bool r_exact) {
    all_exact = all_exact && r_exact;
    if (maxing) {
      best = std::max(best, r);
      alpha = std::max(alpha, best);
      dyn.store(alpha, std::memory_order_relaxed);
    } else {
      best = std::min(best, r);
      beta = std::min(beta, best);
      dyn.store(beta, std::memory_order_relaxed);
    }
  };

  auto launch_scout = [&](NodeId sc, Value a0, Value b0) {
    auto scout = std::make_shared<AbScout>();
    AbShared* shp = &sh;
    std::atomic<Value>* dynp = &dyn;
    const bool dia = maxing;
    sh.exec.submit([shp, scout, sc, a0, b0, dynp, dia] {
      if (!scout->claim()) return;
      try {
        bool ex = false;
        const Value r = seq_ab(*shp, sc, a0, b0, dynp, dia, scout->cancel, ex);
        if (!scout->cancel.load(std::memory_order_relaxed)) {
          scout->result = r;
          scout->valid = true;
          scout->exact = ex;
        }
      } catch (...) {
        // A throwing evaluator must not leave the latch open: the spine's
        // join() would spin forever and the pool worker would die. The
        // scout stays invalid; latch a stop so the run degrades cleanly.
        shp->stop_flag.store(true, std::memory_order_relaxed);
      }
      scout->finish();
    });
    return scout;
  };

  const unsigned width = std::max(sh.opt.width, 1u);
  std::size_t i = 0;
  while (i < children.size()) {
    // No scouts of this level are outstanding here, so stopping is safe;
    // `exact` stays false, so no ancestor memoises a truncated value.
    if (sh.stopped()) return best;
    // Scouts on the next `width` siblings; the spine joins them in order.
    // Grain gating: scouts[0] must be children[i+1] (the promotion target),
    // so when that sibling is below the cutoff no scouts launch this round
    // and the spine folds it in sequentially; further-right below-cutoff
    // siblings are merely skipped (extra scouts only warm the memo).
    std::vector<std::shared_ptr<AbScout>> scouts;
    if (i + 1 < children.size() &&
        sh.t.subtree_leaves(children[i + 1]) >= sh.min_spawn) {
      for (std::size_t j = i + 1; j < children.size() && scouts.size() < width;
           ++j) {
        if (j > i + 1 && sh.t.subtree_leaves(children[j]) < sh.min_spawn)
          continue;
        scouts.push_back(launch_scout(children[j], alpha, beta));
      }
    }
    const bool have_scout = !scouts.empty();
    const std::shared_ptr<AbScout> scout = have_scout ? scouts[0] : nullptr;
    auto cancel_extra_scouts = [&](std::size_t from) {
      for (std::size_t j = from; j < scouts.size(); ++j) {
        scouts[j]->cancel.store(true, std::memory_order_relaxed);
        scouts[j]->join();
      }
    };

    bool spine_exact = false;
    const Value x = pab(sh, children[i], alpha, beta, spine_exact);
    merge(x, spine_exact);
    if (alpha >= beta) {
      cancel_extra_scouts(0);
      return best;  // fail-soft cutoff
    }

    if (have_scout) {
      // Promotion: if the scout already finished, merge its result; else
      // abort it and re-search the sibling in parallel mode. The memo lets
      // the re-search reuse every subtree the scout completed exactly.
      bool merged = false;
      if (scout->done() && scout->valid) {
        merge(scout->result, scout->exact);
        merged = true;
      } else if (!sh.opt.promotion) {
        // Ablation mode: join-wait for the sequential scout.
        if (scout->join()) {
          merge(scout->result, scout->exact);
          merged = true;
        }
      } else {
        scout->cancel.store(true, std::memory_order_relaxed);
        if (scout->join()) {
          merge(scout->result, scout->exact);
          merged = true;
        }
      }
      if (!merged) {
        bool sib_exact = false;
        const Value r = pab(sh, children[i + 1], alpha, beta, sib_exact);
        merge(r, sib_exact);
      }
      cancel_extra_scouts(1);
      if (alpha >= beta) return best;
      i += 2;
      continue;
    }
    ++i;
  }
  if (sh.stopped()) return best;
  if (all_exact) {
    exact = true;
    sh.memo_store(v, best);
  }
  return best;
}

MtAbResult finish_result(AbShared& sh, Value v,
                         std::chrono::steady_clock::time_point start) {
  const auto end = std::chrono::steady_clock::now();
  MtAbResult r;
  r.value = v;
  r.leaf_evaluations = sh.leaf_evals.load();
  r.retries = sh.retries.load();
  r.faults = sh.faults.load();
  r.wall_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(end - start).count());
  if (!sh.stopped()) {
    r.complete = true;
    r.completeness = Completeness::kExact;
    return r;
  }
  // Anytime recovery: the memo holds only exact subtree values, so
  // interval propagation over it gives a sound root bound; if the interval
  // collapses, the stopped search still reports the exact value.
  const AnytimeOutcome out = anytime_minimax_tree_bounds(
      sh.t, [&sh](NodeId n, Value& val) { return sh.memo_lookup(n, val); });
  r.value = out.value;
  r.completeness = out.completeness;
  r.complete = out.completeness == Completeness::kExact;
  return r;
}

}  // namespace

MtAbResult mt_parallel_ab(const Tree& t, const MtAbOptions& opt, Executor& exec,
                          const SearchLimits& limits) {
  AbShared sh(t, opt, exec, limits);
  const auto start = std::chrono::steady_clock::now();
  bool exact = false;
  const Value v = pab(sh, t.root(), kMinusInf, kPlusInf, exact);
  return finish_result(sh, v, start);
}

MtAbResult mt_sequential_ab(const Tree& t, const MtAbOptions& opt,
                            const SearchLimits& limits) {
  class NullExecutor final : public Executor {
   public:
    void submit(std::function<void()> task) override { task(); }
    unsigned workers() const noexcept override { return 0; }
  } null_exec;
  AbShared sh(t, opt, null_exec, limits);
  std::atomic<bool> never{false};
  const auto start = std::chrono::steady_clock::now();
  bool exact = false;
  const Value v =
      seq_ab(sh, t.root(), kMinusInf, kPlusInf, nullptr, true, never, exact);
  return finish_result(sh, v, start);
}

MtAbResult mt_sequential_ab(const Tree& t, std::uint64_t leaf_cost_ns,
                            LeafCostModel cost_model, const SearchLimits& limits) {
  MtAbOptions opt;
  opt.leaf_cost_ns = leaf_cost_ns;
  opt.cost_model = cost_model;
  return mt_sequential_ab(t, opt, limits);
}

// --- Deprecated self-scheduling wrappers (façade-backed). -------------------

namespace {

MtAbResult ab_from_search_result(const SearchResult& r) {
  MtAbResult out;
  out.value = r.value;
  out.leaf_evaluations = r.work;
  out.wall_ns = r.wall_ns;
  out.complete = r.complete;
  out.completeness = r.completeness;
  out.retries = r.retries;
  out.faults = r.faults;
  return out;
}

}  // namespace

MtAbResult mt_parallel_ab(const Tree& t, const MtAbOptions& opt) {
  SearchRequest req;
  req.tree = &t;
  req.algorithm = Algorithm::kMtParallelAb;
  req.threads = opt.threads;
  req.width = opt.width;
  req.leaf_cost_ns = opt.leaf_cost_ns;
  req.cost_model = opt.cost_model;
  req.promotion = opt.promotion;
  req.grain = opt.grain_ns;
  req.tt = opt.tt;
  req.leaf_hook = opt.leaf_hook;
  req.retry = opt.retry;
  return ab_from_search_result(search(req));
}

MtAbResult mt_sequential_ab(const Tree& t, std::uint64_t leaf_cost_ns,
                            LeafCostModel cost_model) {
  SearchRequest req;
  req.tree = &t;
  req.algorithm = Algorithm::kMtSequentialAb;
  req.leaf_cost_ns = leaf_cost_ns;
  req.cost_model = cost_model;
  return ab_from_search_result(search(req));
}

}  // namespace gtpar
