#include "gtpar/threads/thread_pool.hpp"

#include <algorithm>

namespace gtpar {

ThreadPool::ThreadPool(unsigned threads) {
  const unsigned n = std::max(threads, 1u);
  workers_.reserve(n);
  for (unsigned i = 0; i < n; ++i) workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::worker_loop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

}  // namespace gtpar
