#include "gtpar/threads/thread_pool.hpp"

#include <algorithm>

namespace gtpar {

ThreadPool::ThreadPool(Options opt) : opt_(opt) {
  const unsigned n = std::max(opt_.threads, 1u);
  workers_.reserve(n);
  for (unsigned i = 0; i < n; ++i) workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (opt_.max_queue == 0 || queue_.size() < opt_.max_queue) {
      queue_.push_back(std::move(task));
      task = nullptr;
    } else {
      ++caller_runs_;
    }
  }
  if (task) {
    // Queue at capacity: flow-control by running on the submitting thread.
    // Correct for self-contained tasks (all of ours are: scouts signal
    // completion through captured state), and it means a burst of requests
    // can never grow the queue without bound.
    run_task(task);
    return;
  }
  cv_.notify_one();
}

void ThreadPool::run_task(std::function<void()>& task) noexcept {
  try {
    task();
  } catch (...) {
    // Containment: a throwing task must not kill the worker (or propagate
    // out of a caller-runs submit()). Tasks carry their own error channel;
    // count the escape so it is observable.
    task_exceptions_.fetch_add(1, std::memory_order_relaxed);
  }
}

std::uint64_t ThreadPool::task_exceptions() const {
  return task_exceptions_.load(std::memory_order_relaxed);
}

std::size_t ThreadPool::pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

std::uint64_t ThreadPool::caller_runs() const {
  std::lock_guard<std::mutex> lock(mu_);
  return caller_runs_;
}

void ThreadPool::worker_loop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    run_task(task);
  }
}

}  // namespace gtpar
