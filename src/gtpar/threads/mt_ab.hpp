// gtpar/threads/mt_ab.hpp
//
// Real std::thread parallel alpha-beta — the MIN/MAX counterpart of
// mt_solve.hpp, following the paper's cascade: the spine searches the
// leftmost unfinished child with the live window while one sequential
// alpha-beta scout per level runs on the next sibling with a *snapshot*
// of the window. Scouts re-read the spine's shared window bound at every
// node entry, so a bound sharpened by the spine prunes inside running
// scouts as well ("each having its own alpha-bound and beta-bound,
// coordinated in a cascading structure").
//
// Joining is fail-soft-safe: a scout launched with window (a0, b) returns
// r such that r <= a0 implies val <= r (discardable, since the live alpha
// only grew), r >= b implies a cutoff, and otherwise r is exact.
//
// As with mt_solve.hpp there are two entry styles: the core overloads run
// on a caller-supplied Executor with SearchLimits (this is what the
// batched engine uses, many trees at a time on one work-stealing
// scheduler), and the original self-scheduling entrypoints remain as
// DEPRECATED thin wrappers over the unified façade (engine/api.hpp).
#pragma once

#include <cstdint>

#include "gtpar/common.hpp"
#include "gtpar/engine/executor.hpp"
#include "gtpar/threads/mt_solve.hpp"
#include "gtpar/tree/tree.hpp"

namespace gtpar {

class TranspositionTable;  // engine/tt.hpp

struct MtAbOptions {
  /// Ignored by the Executor-taking core (the scheduler's size rules).
  unsigned threads = 4;
  std::uint64_t leaf_cost_ns = 2000;
  LeafCostModel cost_model = LeafCostModel::kSpin;
  /// Promotion (the paper's P-SOLVE case two): when the spine catches up
  /// with a still-running scout, abort it and re-search the sibling in
  /// parallel (reusing the scout's exactly-memoised subtrees). With false,
  /// the spine join-waits for the sequential scout instead — the E17
  /// ablation shows this serialises the top levels and caps the speed-up
  /// near 2x.
  bool promotion = true;
  /// Scouts launched per level (1 = the paper's width-1 cascade).
  unsigned width = 1;
  /// Adaptive task granularity: minimum estimated sequential work (ns) for
  /// a sibling subtree to be scouted as a scheduler task; smaller subtrees
  /// are folded into the spine and run inline through the flat iterative
  /// kernel. 0 = auto-calibrated (engine/granularity.hpp); 1 = always
  /// spawn.
  std::uint64_t grain_ns = 0;
  /// Shared transposition table (engine/tt.hpp) replacing the per-search
  /// exact-value memo: concurrent and subsequent searches reuse each
  /// other's completed subtrees, keyed by tree fingerprint + node. Null =
  /// private memo. With a TT, leaf_evaluations counts evaluations with
  /// multiplicity (replacement may evict the dedup record).
  TranspositionTable* tt = nullptr;
  /// Evaluator hook run once per leaf-evaluation attempt (fault injection,
  /// externalised evaluation); a throw is retried per `retry`, then
  /// latches a stop and the result degrades to an anytime bound.
  LeafHook* leaf_hook = nullptr;
  /// Retry budget for leaf_hook faults.
  RetryPolicy retry{};
};

struct MtAbResult {
  Value value = 0;
  /// Leaf evaluations across all threads (with multiplicity: an aborted
  /// scout's work that the spine redoes counts twice — real cost).
  std::uint64_t leaf_evaluations = 0;
  std::uint64_t wall_ns = 0;
  /// False if the search stopped early (cancelled, budget exhausted, or a
  /// permanent leaf fault) without the memo determining the root. When
  /// false, `value` carries the anytime bound described by `completeness`.
  bool complete = true;
  /// Anytime semantics of `value`: interval propagation over the exact
  /// memo yields a lower/upper root bound (or the exact value) on stop.
  Completeness completeness = Completeness::kExact;
  /// Leaf-evaluation retries performed / faults observed via leaf_hook.
  std::uint64_t retries = 0;
  std::uint64_t faults = 0;
};

/// Core: cascading parallel alpha-beta with scouts on `exec`. Safe to run
/// many instances concurrently on one shared executor.
MtAbResult mt_parallel_ab(const Tree& t, const MtAbOptions& opt, Executor& exec,
                          const SearchLimits& limits = {});

/// Core: single-threaded alpha-beta with the same leaf-cost model and
/// limits.
MtAbResult mt_sequential_ab(const Tree& t, std::uint64_t leaf_cost_ns,
                            LeafCostModel cost_model, const SearchLimits& limits);

/// Core: as above with the full option set (leaf hook, retry policy) —
/// what the façade's kMtSequentialAb entry dispatches to. threads, width,
/// and promotion are ignored.
MtAbResult mt_sequential_ab(const Tree& t, const MtAbOptions& opt,
                            const SearchLimits& limits);

/// DEPRECATED self-scheduling entrypoint: thin wrapper over gtpar::search
/// with Algorithm::kMtParallelAb (work-stealing scheduler of opt.threads
/// workers).
MtAbResult mt_parallel_ab(const Tree& t, const MtAbOptions& opt = {});

/// DEPRECATED: thin wrapper over gtpar::search with
/// Algorithm::kMtSequentialAb.
MtAbResult mt_sequential_ab(const Tree& t, std::uint64_t leaf_cost_ns = 2000,
                            LeafCostModel cost_model = LeafCostModel::kSpin);

}  // namespace gtpar
