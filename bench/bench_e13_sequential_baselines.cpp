// E13 — sequential baselines in context: alpha-beta vs SCOUT [7] vs SSS*
// (the comparison target of reference [11], Vornberger's "Parallel
// alpha-beta versus parallel SSS*"). Leaf counts across move-ordering
// quality show why the paper parallelizes alpha-beta: it is optimal on
// well-ordered trees and SSS*'s best-first advantage shrinks as ordering
// improves, while SSS* pays list-maintenance overhead (gamma steps, peak
// OPEN size).
#include "bench/bench_util.hpp"

#include "gtpar/ab/alphabeta.hpp"
#include "gtpar/ab/sss.hpp"
#include "gtpar/tree/generators.hpp"
#include "gtpar/tree/proof_tree.hpp"

int main() {
  using namespace gtpar;
  bench::banner("E13", "Sequential baselines: alpha-beta vs SCOUT vs SSS*",
                "distinct leaves evaluated on M(2,12); mean over 10 seeds per "
                "ordering quality");

  const unsigned d = 2, n = 12;
  std::printf("-- i.i.d. M(%u,%u) with varying move-ordering quality\n", d, n);
  bench::Table table({"ordering q", "minimax", "alpha-beta", "SCOUT", "SSS*",
                      "Fact2 LB", "SSS* gamma", "SSS* peak open"});
  for (const double q : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    std::uint64_t ab = 0, sc = 0, ss = 0, gamma = 0;
    std::size_t peak = 0;
    const unsigned kSeeds = 10;
    for (std::uint64_t seed = 0; seed < kSeeds; ++seed) {
      const Tree t = make_ordered_iid_minimax(d, n, 0, 1 << 20, seed * 7 + 1, q);
      ab += alphabeta(t).distinct_leaves;
      sc += scout(t).distinct_leaves;
      const auto s = sss_star(t);
      ss += s.distinct_leaves;
      gamma += s.gamma_steps;
      peak = std::max(peak, s.peak_open);
    }
    table.row({bench::fmt(q), bench::fmt(uniform_leaf_count(d, n)),
               bench::fmt(ab / kSeeds), bench::fmt(sc / kSeeds),
               bench::fmt(ss / kSeeds), bench::fmt(fact2_lower_bound(d, n)),
               bench::fmt(gamma / kSeeds), bench::fmt(std::uint64_t(peak))});
  }
  table.print();

  std::printf("-- ordering extremes\n");
  bench::Table ext({"instance", "alpha-beta", "SCOUT", "SSS*", "Fact2 LB"});
  {
    const Tree worst = make_worst_case_minimax(d, n);
    ext.row({"worst ordering", bench::fmt(alphabeta(worst).distinct_leaves),
             bench::fmt(scout(worst).distinct_leaves),
             bench::fmt(sss_star(worst).distinct_leaves),
             bench::fmt(fact2_lower_bound(d, n))});
    const Tree best = make_best_case_minimax(d, n);
    ext.row({"best ordering", bench::fmt(alphabeta(best).distinct_leaves),
             bench::fmt(scout(best).distinct_leaves),
             bench::fmt(sss_star(best).distinct_leaves),
             bench::fmt(fact2_lower_bound(d, n))});
  }
  ext.print();

  std::printf(
      "Reading: SSS* dominates alpha-beta everywhere (never more leaves) but\n"
      "its advantage collapses to zero on well-ordered trees, while its OPEN\n"
      "list costs real memory and bookkeeping -- the classic argument for\n"
      "parallelizing alpha-beta rather than SSS*, which is the road the\n"
      "paper takes.\n\n");
  return 0;
}
