// E6 — Theorem 4 and Proposition 6: in the node-expansion model,
// N-Parallel SOLVE of width 1 achieves S*(T)/P*(T) >= c(n+1), with the
// relaxed per-degree step caps (n-k) C(n,k) (d-1)^k. The MIN/MAX expansion
// variants (Section 5's closing remark) are reported as well.
#include "bench/bench_util.hpp"

#include "gtpar/analysis/bounds.hpp"
#include "gtpar/expand/minimax_expansion.hpp"
#include "gtpar/expand/nor_expansion.hpp"
#include "gtpar/expand/tree_source.hpp"
#include "gtpar/tree/generators.hpp"

int main() {
  using namespace gtpar;
  bench::banner("E6", "Theorem 4: node-expansion N-Parallel SOLVE linear speed-up",
                "work = node expansions; S* = N-Sequential, P* = width-1 steps");

  std::printf("-- implicit B(2,n), worst case and i.i.d. golden bias\n");
  bench::Table table({"n", "instance", "S*(T)", "P*(T)", "speed-up", "n+1",
                      "c = SU/(n+1)"});
  for (unsigned n = 6; n <= 16; n += 2) {
    struct Case {
      const char* name;
      const TreeSource& src;
    };
    const WorstCaseNorSource worst(2, n, false);
    const auto iid = make_iid_nor_source(2, n, golden_bias(), n);
    const Case cases[] = {{"worst", worst}, {"iid golden", iid}};
    for (const auto& c : cases) {
      const auto seq = run_n_sequential_solve(c.src);
      const auto par = run_n_parallel_solve(c.src, 1);
      const double speedup = double(seq.stats.steps) / double(par.stats.steps);
      table.row({bench::fmt(n), c.name, bench::fmt(seq.stats.work),
                 bench::fmt(par.stats.steps), bench::fmt(speedup), bench::fmt(n + 1),
                 bench::fmt(speedup / double(n + 1))});
    }
  }
  table.print();

  std::printf("-- Proposition 6 caps on the skeleton of B(2,12), iid golden\n");
  {
    const unsigned n = 12;
    const auto src = make_iid_nor_source(2, n, golden_bias(), 3);
    // The skeleton of an implicit tree is what N-Sequential SOLVE expands;
    // materialize, take the skeleton via the leaf-evaluation run, re-wrap.
    const Tree t = materialize(src);
    const ExplicitTreeSource tsrc(t);
    const auto par = run_n_parallel_solve(tsrc, 1);
    bench::Table caps({"degree k+1", "t*_{k+1}(T) measured", "cap (n-k)C(n,k)(d-1)^k"});
    for (unsigned k = 0; k < 8; ++k)
      caps.row({bench::fmt(k + 1u), bench::fmt(par.stats.t(k + 1)),
                bench::fmt(prop6_bound(n, 2, k))});
    caps.print();
  }

  std::printf("-- MIN/MAX node-expansion variants, M(2,n) i.i.d. leaves\n");
  bench::Table mm({"n", "S*~(T)", "P*~(T) w=1", "speed-up"});
  for (unsigned n = 6; n <= 14; n += 2) {
    const auto src = make_iid_minimax_source(2, n, 0, 1 << 20, n);
    const auto seq = run_n_sequential_ab(src);
    const auto par = run_n_parallel_ab(src, 1);
    mm.row({bench::fmt(n), bench::fmt(seq.stats.work), bench::fmt(par.stats.steps),
            bench::fmt(double(seq.stats.steps) / double(par.stats.steps))});
  }
  mm.print();

  std::printf(
      "Reading: the node-expansion model reproduces the leaf-model speed-ups\n"
      "(Theorem 4), paying only the O(n) relaxation of the step caps.\n\n");
  return 0;
}
