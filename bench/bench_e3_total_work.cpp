// E3 — Corollary 1: the *total work* of width-1 Parallel SOLVE is at most
// c' * S(T): parallelism costs only a constant-factor work overhead over
// the optimal sequential algorithm.
#include "bench/bench_util.hpp"

#include "gtpar/solve/nor_simulator.hpp"
#include "gtpar/solve/sequential_solve.hpp"
#include "gtpar/tree/generators.hpp"

int main() {
  using namespace gtpar;
  bench::banner("E3", "Corollary 1: W(T) <= c' S(T) (work overhead of width 1)",
                "W(T) = leaves evaluated by width-1 Parallel SOLVE");

  for (unsigned d : {2u, 3u}) {
    const unsigned n_max = d == 2 ? 16 : 10;
    std::printf("-- B(%u,n), i.i.d. golden bias and adversarial instances\n", d);
    bench::Table table({"n", "instance", "S(T)", "W(T)", "c' = W/S"});
    for (unsigned n = 6; n <= n_max; n += 2) {
      struct Case {
        const char* name;
        Tree tree;
      };
      const Case cases[] = {
          {"iid golden", make_uniform_iid_nor(d, n, golden_bias(), n)},
          {"iid 0.3", make_uniform_iid_nor(d, n, 0.3, n + 7)},
          {"worst", make_worst_case_nor(d, n, false)},
          {"best(filled)", make_best_case_nor(d, n, false, golden_bias(), n)},
      };
      for (const auto& c : cases) {
        const std::uint64_t s = sequential_solve_work(c.tree);
        const auto run = run_parallel_solve(c.tree, 1);
        table.row({bench::fmt(n), c.name, bench::fmt(s), bench::fmt(run.stats.work),
                   bench::fmt(double(run.stats.work) / double(s))});
      }
    }
    table.print();
  }

  std::printf(
      "Reading: the c' column stays bounded by a small constant (around 1-2),\n"
      "independent of n: width-1 parallelism wastes almost no work.\n\n");
  return 0;
}
