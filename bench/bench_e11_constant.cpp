// E11 — the Section 8 remark: "The provable constant c in Theorem 1 is
// rather poor. Some simulations we did indicate that a better constant is
// achievable." This experiment is exactly those simulations: the measured
// constant c = (S/P)/(n+1) across many seeds, against the adversary bound
// of Proposition 4 (the best constant the proof technique can certify).
#include "bench/bench_util.hpp"

#include <algorithm>
#include <limits>

#include "gtpar/analysis/bounds.hpp"
#include "gtpar/solve/nor_simulator.hpp"
#include "gtpar/solve/sequential_solve.hpp"
#include "gtpar/tree/generators.hpp"

int main() {
  using namespace gtpar;
  bench::banner("E11", "Section 8 remark: the empirical constant c beats the proof",
                "c = speed-up / (n+1); 20 i.i.d. seeds per row; 'provable c' = what "
                "the Proposition 4 adversary bound certifies for the same S(T)");

  for (unsigned d : {2u, 3u}) {
    const unsigned n_max = d == 2 ? 16 : 10;
    std::printf("-- B(%u,n), i.i.d. golden-bias leaves\n", d);
    bench::Table table({"n", "mean c", "min c", "max c", "provable c (Prop 4)"});
    for (unsigned n = 8; n <= n_max; n += 2) {
      double sum = 0, mn = std::numeric_limits<double>::infinity(), mx = 0;
      std::uint64_t min_s = ~0ull;
      const unsigned kSeeds = 20;
      for (std::uint64_t seed = 0; seed < kSeeds; ++seed) {
        const Tree t = make_uniform_iid_nor(d, n, golden_bias(), seed * 17 + n);
        const std::uint64_t s = sequential_solve_work(t);
        const auto run = run_parallel_solve(t, 1);
        const double c = double(s) / double(run.stats.steps) / double(n + 1);
        sum += c;
        mn = std::min(mn, c);
        mx = std::max(mx, c);
        min_s = std::min(min_s, s);
      }
      // What the paper's proof technique can certify for this S(T): steps
      // could be as large as the Proposition 4 adversary allows.
      const double provable =
          double(min_s) / double(prop4_max_steps(n, d, min_s)) / double(n + 1);
      table.row({bench::fmt(n), bench::fmt(sum / kSeeds), bench::fmt(mn),
                 bench::fmt(mx), bench::fmt(provable, 4)});
    }
    table.print();
  }

  std::printf(
      "Reading: measured constants sit comfortably above what the counting\n"
      "argument can certify for the same instances (final column) -- and the\n"
      "certified value is itself far more optimistic than the absolute\n"
      "constant the paper proves -- quantifying the closing remark that a\n"
      "better constant is achievable.\n\n");
  return 0;
}
