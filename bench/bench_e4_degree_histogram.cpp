// E4 — Proposition 3 (and Proposition 2): on the skeleton H_T, the number
// of width-1 steps of parallel degree k+1 is at most C(n,k)(d-1)^k, and
// running on T is never slower than on H_T. The table shows the measured
// step-degree histogram next to the combinatorial caps, plus the
// P(T) <= P(H_T) comparison.
#include "bench/bench_util.hpp"

#include "gtpar/analysis/bounds.hpp"
#include "gtpar/solve/nor_simulator.hpp"
#include "gtpar/solve/sequential_solve.hpp"
#include "gtpar/tree/generators.hpp"
#include "gtpar/tree/skeleton.hpp"

int main() {
  using namespace gtpar;
  bench::banner("E4",
                "Proposition 3: t_{k+1}(H_T) <= C(n,k)(d-1)^k; Proposition 2: "
                "P_w(T) <= P_w(H_T)",
                "width-1 Parallel SOLVE on skeletons of i.i.d. and worst-case "
                "instances");

  struct Case {
    const char* name;
    unsigned d, n;
    Tree tree;
  };
  const unsigned n2 = 14, n3 = 9;
  Case cases[] = {
      {"B(2,14) iid golden", 2, n2, make_uniform_iid_nor(2, n2, golden_bias(), 5)},
      {"B(2,14) worst", 2, n2, make_worst_case_nor(2, n2, false)},
      {"B(3,9) iid 0.5", 3, n3, make_uniform_iid_nor(3, n3, 0.5, 6)},
  };

  for (const auto& c : cases) {
    const auto seq = sequential_solve(c.tree);
    const Skeleton h = make_skeleton(c.tree, seq.evaluated);
    const auto on_h = run_parallel_solve(h.tree, 1);
    const auto on_t = run_parallel_solve(c.tree, 1);
    std::printf("-- %s: P(T)=%llu  P(H_T)=%llu  (Prop 2: P(T) <= P(H_T): %s)\n",
                c.name, static_cast<unsigned long long>(on_t.stats.steps),
                static_cast<unsigned long long>(on_h.stats.steps),
                on_t.stats.steps <= on_h.stats.steps ? "OK" : "VIOLATED");
    bench::Table table({"degree k+1", "t_{k+1}(H_T) measured", "cap C(n,k)(d-1)^k",
                        "utilisation"});
    for (unsigned k = 0; k <= c.n && k < 10; ++k) {
      const std::uint64_t cap = prop3_bound(c.n, c.d, k);
      const std::uint64_t got = on_h.stats.t(k + 1);
      table.row({bench::fmt(k + 1u), bench::fmt(got), bench::fmt(cap),
                 cap ? bench::fmt(double(got) / double(cap)) : "-"});
    }
    table.print();
  }

  std::printf(
      "Reading: every measured t_{k+1} sits below its cap; small-degree steps\n"
      "are rare exactly as the code-counting argument of Proposition 3 says.\n\n");
  return 0;
}
