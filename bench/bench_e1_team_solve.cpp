// E1 — Proposition 1: Team SOLVE with p processors achieves Omega(sqrt(p))
// speed-up over Sequential SOLVE, and that order is tight: there are
// instances where the speed-up is O(sqrt(p)). The table sweeps p in powers
// of the branching factor and reports the measured speed-up next to
// sqrt(p), on both adversarial (all-leaves) and i.i.d. instances.
#include "bench/bench_util.hpp"

#include <cmath>

#include "gtpar/solve/nor_simulator.hpp"
#include "gtpar/solve/sequential_solve.hpp"
#include "gtpar/tree/generators.hpp"

namespace gtpar {
namespace {

void run_family(const char* label, const Tree& t) {
  const std::uint64_t s = sequential_solve_work(t);
  std::printf("-- %s: S(T) = %llu leaves evaluated by Sequential SOLVE\n", label,
              static_cast<unsigned long long>(s));
  bench::Table table({"p", "Team steps", "speed-up", "sqrt(p)", "speed-up/sqrt(p)"});
  for (std::size_t p = 1; p <= 1024; p *= 4) {
    const auto run = run_team_solve(t, p);
    const double speedup = double(s) / double(run.stats.steps);
    table.row({bench::fmt(std::uint64_t(p)), bench::fmt(run.stats.steps),
               bench::fmt(speedup), bench::fmt(std::sqrt(double(p))),
               bench::fmt(speedup / std::sqrt(double(p)))});
  }
  table.print();
}

}  // namespace
}  // namespace gtpar

int main() {
  using namespace gtpar;
  bench::banner("E1", "Proposition 1: Team SOLVE speed-up is Theta(sqrt(p))",
                "uniform NOR-trees; speed-up = S(T) / steps(Team SOLVE with p)");

  run_family("B(2,14), worst case (all leaves evaluated)",
             make_worst_case_nor(2, 14, false));
  run_family("B(2,14), i.i.d. leaves at the golden bias",
             make_uniform_iid_nor(2, 14, golden_bias(), 1));
  run_family("B(2,14), tight instance (minimal proof tree + dead filler)",
             make_best_case_nor(2, 14, false, golden_bias(), 7));
  run_family("B(3,9), worst case", make_worst_case_nor(3, 9, false));
  run_family("B(3,9), i.i.d. p=0.5", make_uniform_iid_nor(3, 9, 0.5, 2));

  std::printf(
      "Reading: on the no-pruning worst case every evaluation is useful and\n"
      "Team SOLVE trivially gets speed-up p (upper row block). Once pruning\n"
      "matters -- i.i.d. instances and the designed tight instance, where\n"
      "most of the leftmost p live leaves die before Sequential SOLVE would\n"
      "ever touch them -- the speed-up/sqrt(p) column settles into a small\n"
      "constant band: Team SOLVE is Theta(sqrt p), as Proposition 1 states.\n\n");
  return 0;
}
