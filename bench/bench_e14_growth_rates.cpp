// E14 — growth-rate constants from the literature the paper builds on:
//  * Pearl/Tarsi: at the critical i.i.d. bias, Sequential SOLVE's expected
//    work on binary NOR trees grows like the golden ratio 1.618^n (and it
//    is asymptotically optimal there — the basis of Section 6's claim that
//    SOLVE/alpha-beta are the right algorithms to parallelize);
//  * Pearl's alpha-beta branching factor R*(d) = xi_d/(1-xi_d) for i.i.d.
//    MIN/MAX trees with continuous leaf values;
//  * Saks-Wigderson: the randomized complexity exponent
//    (d-1+sqrt(d^2+14d+1))/4, achieved by R-Sequential SOLVE.
// The tables report measured per-level growth next to each constant.
#include "bench/bench_util.hpp"

#include <cmath>

#include "gtpar/ab/alphabeta.hpp"
#include "gtpar/analysis/growth.hpp"
#include "gtpar/expand/tree_source.hpp"
#include "gtpar/rand/randomized.hpp"
#include "gtpar/solve/sequential_solve.hpp"
#include "gtpar/tree/generators.hpp"

namespace gtpar {
namespace {

double mean_solve_work(unsigned d, unsigned n, double q, unsigned seeds) {
  double total = 0;
  for (std::uint64_t s = 0; s < seeds; ++s)
    total += double(sequential_solve_work(make_uniform_iid_nor(d, n, q, s * 11 + n)));
  return total / seeds;
}

double mean_ab_leaves(unsigned d, unsigned n, unsigned seeds) {
  double total = 0;
  for (std::uint64_t s = 0; s < seeds; ++s)
    total += double(
        alphabeta(make_uniform_iid_minimax(d, n, 0, 1 << 24, s * 13 + n)).distinct_leaves);
  return total / seeds;
}

}  // namespace
}  // namespace gtpar

int main() {
  using namespace gtpar;
  bench::banner("E14", "Growth-rate constants (Pearl, Tarsi, Saks-Wigderson)",
                "measured per-level growth = (E[cost at n] / E[cost at n-2])^(1/2)");

  std::printf("-- Sequential SOLVE at the critical bias q*(d) [theory: golden "
              "ratio 1.618 for d=2]\n");
  bench::Table solve_t({"d", "q*(d)", "n", "E[S]", "measured growth", "theory"});
  for (unsigned d : {2u, 3u}) {
    const double q = critical_one_probability(d);
    const unsigned n_max = d == 2 ? 16 : 10;
    double prev = 0;
    for (unsigned n = 8; n <= n_max; n += 2) {
      const double mean = mean_solve_work(d, n, q, 24);
      const double growth = prev > 0 ? std::sqrt(mean / prev) : 0;
      // Theory column: for d = 2 the golden ratio; for general d, between
      // sqrt(d) and d (no closed form is claimed here).
      solve_t.row({bench::fmt(d), bench::fmt(q, 4), bench::fmt(n), bench::fmt(mean, 1),
                   prev > 0 ? bench::fmt(growth, 3) : "-",
                   d == 2 ? bench::fmt((1 + std::sqrt(5.0)) / 2, 3) : "(sqrt d, d)"});
      prev = mean;
    }
  }
  solve_t.print();

  std::printf("-- alpha-beta on i.i.d. MIN/MAX trees [theory: R*(d) = xi/(1-xi)]\n");
  bench::Table ab_t({"d", "n", "E[leaves]", "measured growth", "R*(d)"});
  for (unsigned d : {2u, 3u}) {
    const unsigned n_max = d == 2 ? 14 : 9;
    double prev = 0;
    const unsigned step = 2;
    for (unsigned n = 7; n <= n_max; n += step) {
      const double mean = mean_ab_leaves(d, n, 16);
      const double growth = prev > 0 ? std::pow(mean / prev, 1.0 / step) : 0;
      ab_t.row({bench::fmt(d), bench::fmt(n), bench::fmt(mean, 1),
                prev > 0 ? bench::fmt(growth, 3) : "-",
                bench::fmt(alphabeta_branching_factor(d), 3)});
      prev = mean;
    }
  }
  ab_t.print();

  std::printf("-- R-Sequential SOLVE on the adversarial instance [theory cap: "
              "Saks-Wigderson 1.686 for d=2]\n");
  bench::Table rs_t({"n", "E[leaf evals]", "measured growth", "lambda_2"});
  {
    double prev = 0;
    for (unsigned n = 8; n <= 14; n += 2) {
      const WorstCaseNorSource src(2, n, false);
      // Count leaf expansions only: total expansions minus internals is
      // awkward; estimate work from the estimator (node expansions) and
      // report growth, which is what the exponent governs.
      const auto est = estimate_r_solve(src, 0, 16, 3);
      const double growth = prev > 0 ? std::sqrt(est.mean_work / prev) : 0;
      rs_t.row({bench::fmt(n), bench::fmt(est.mean_work, 1),
                prev > 0 ? bench::fmt(growth, 3) : "-",
                bench::fmt(saks_wigderson_growth(2), 3)});
      prev = est.mean_work;
    }
  }
  rs_t.print();

  std::printf(
      "Reading: measured growth factors land on the literature constants\n"
      "(1.618 for critical SOLVE and for alpha-beta at d=2; below the 1.686\n"
      "Saks-Wigderson ceiling for the randomized algorithm), confirming that\n"
      "the simulators reproduce the sequential complexity landscape that the\n"
      "paper's parallelization starts from.\n\n");
  return 0;
}
