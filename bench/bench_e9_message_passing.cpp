// E9 — Section 7: the message-passing implementation (level-per-processor,
// six message types, pre-emption rule) preserves the linear speed-up of
// N-Parallel SOLVE: rounds stay within a constant factor of the idealized
// lock-step steps. The zone-multiplexed variant with p processors pays the
// expected ~(n+1)/p slowdown.
#include "bench/bench_util.hpp"

#include "gtpar/expand/nor_expansion.hpp"
#include "gtpar/expand/tree_source.hpp"
#include "gtpar/mp/message_passing.hpp"
#include "gtpar/tree/generators.hpp"

int main() {
  using namespace gtpar;
  bench::banner("E9", "Section 7: message-passing implementation keeps linear "
                      "speed-up",
                "rounds vs idealized width-1 steps; unit-time messages; binary trees");

  std::printf("-- implicit B(2,n): rounds vs ideal steps\n");
  bench::Table table({"n", "instance", "ideal P*(T)", "MP rounds", "rounds/steps",
                      "MP expansions", "ideal work", "MP msgs"});
  for (unsigned n = 8; n <= 14; n += 2) {
    struct Case {
      const char* name;
      const TreeSource& src;
    };
    const WorstCaseNorSource worst(2, n, false);
    const auto iid = make_iid_nor_source(2, n, golden_bias(), n);
    const Case cases[] = {{"worst", worst}, {"iid golden", iid}};
    for (const auto& c : cases) {
      const auto ideal = run_n_parallel_solve(c.src, 1);
      const auto mp = run_message_passing_solve(c.src);
      table.row({bench::fmt(n), c.name, bench::fmt(ideal.stats.steps),
                 bench::fmt(mp.rounds),
                 bench::fmt(double(mp.rounds) / double(ideal.stats.steps)),
                 bench::fmt(mp.expansions), bench::fmt(ideal.stats.work),
                 bench::fmt(mp.messages)});
    }
  }
  table.print();

  std::printf("-- zone multiplexing: fixed p processors on B(2,12) worst case\n");
  {
    const unsigned n = 12;
    const WorstCaseNorSource src(2, n, false);
    const auto seq = run_n_sequential_solve(src);
    bench::Table zones({"p", "MP rounds", "speed-up vs S*", "peak busy"});
    for (unsigned p : {1u, 2u, 4u, 7u, 13u}) {
      MpOptions opt;
      opt.num_processors = p;
      const auto mp = run_message_passing_solve(src, opt);
      zones.row({bench::fmt(p), bench::fmt(mp.rounds),
                 bench::fmt(double(seq.stats.steps) / double(mp.rounds)),
                 bench::fmt(unsigned(mp.peak_busy))});
    }
    zones.print();
  }

  std::printf(
      "Reading: rounds/steps sits at a small constant (message latency and\n"
      "conversion walks), so the implementation preserves the Theorem 4\n"
      "speed-up; with p-processor zones the speed-up scales with p until it\n"
      "saturates at the width-1 parallelism limit of ~n+1.\n\n");
  return 0;
}
