// E10 — wall-clock evidence with real std::threads: the width-1 cascade
// (mt_solve / mt_ab) against single-threaded baselines under the same
// leaf-cost model. Uses google-benchmark.
//
// Leaf evaluations are modelled as fixed-latency operations (kSleep): this
// matches the paper's unit-cost leaf oracle and — unlike a busy spin —
// demonstrates the overlap benefit even on hosts with few physical cores
// (the CI container for this repository has a single core; on a laptop
// with 8 cores, switch kCostModel to kSpin to see CPU-bound speed-ups).
#include <benchmark/benchmark.h>

#include "gtpar/threads/mt_ab.hpp"
#include "gtpar/threads/mt_solve.hpp"
#include "gtpar/tree/generators.hpp"

namespace gtpar {
namespace {

constexpr std::uint64_t kLeafNs = 100'000;  // 100 us per leaf evaluation
constexpr LeafCostModel kCostModel = LeafCostModel::kSleep;

const Tree& solve_tree() {
  // Worst case: all 2^10 leaves must be evaluated, so the comparison is
  // pure scheduling (no luck in what gets pruned).
  static const Tree t = make_worst_case_nor(2, 10, false);
  return t;
}

const Tree& ab_tree() {
  static const Tree t = make_worst_case_minimax(2, 10);
  return t;
}

void BM_SequentialSolve(benchmark::State& state) {
  const Tree& t = solve_tree();
  for (auto _ : state) {
    auto r = mt_sequential_solve(t, kLeafNs, kCostModel);
    benchmark::DoNotOptimize(r.value);
  }
  state.counters["leaves"] =
      static_cast<double>(mt_sequential_solve(t, 0).leaf_evaluations);
}
BENCHMARK(BM_SequentialSolve)->Unit(benchmark::kMillisecond)->MinTime(0.4);

void BM_ParallelSolve(benchmark::State& state) {
  const Tree& t = solve_tree();
  MtSolveOptions opt;
  opt.threads = static_cast<unsigned>(state.range(0));
  opt.leaf_cost_ns = kLeafNs;
  opt.cost_model = kCostModel;
  std::uint64_t leaves = 0;
  for (auto _ : state) {
    auto r = mt_parallel_solve(t, opt);
    benchmark::DoNotOptimize(r.value);
    leaves = r.leaf_evaluations;
  }
  state.counters["leaves"] = static_cast<double>(leaves);
}
BENCHMARK(BM_ParallelSolve)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Arg(11)
    ->Unit(benchmark::kMillisecond)
    ->MinTime(0.4);

void BM_SequentialAlphaBeta(benchmark::State& state) {
  const Tree& t = ab_tree();
  for (auto _ : state) {
    auto r = mt_sequential_ab(t, kLeafNs, kCostModel);
    benchmark::DoNotOptimize(r.value);
  }
}
BENCHMARK(BM_SequentialAlphaBeta)->Unit(benchmark::kMillisecond)->MinTime(0.4);

void BM_ParallelAlphaBeta(benchmark::State& state) {
  const Tree& t = ab_tree();
  MtAbOptions opt;
  opt.threads = static_cast<unsigned>(state.range(0));
  opt.leaf_cost_ns = kLeafNs;
  opt.cost_model = kCostModel;
  for (auto _ : state) {
    auto r = mt_parallel_ab(t, opt);
    benchmark::DoNotOptimize(r.value);
  }
}
BENCHMARK(BM_ParallelAlphaBeta)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Arg(11)
    ->Unit(benchmark::kMillisecond)
    ->MinTime(0.4);

}  // namespace
}  // namespace gtpar

BENCHMARK_MAIN();
