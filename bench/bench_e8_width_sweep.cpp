// E8 — Section 8 (conclusion): widths 2 and 3 use O(n^2) and O(n^3)
// processors; the paper *conjectures* (cannot prove) that the speed-up
// stays linear in the number of processors for any fixed width. This
// experiment probes the conjecture empirically: for each width we report
// the processor bound, the measured max degree, the speed-up, and the
// speed-up per processor actually used.
#include "bench/bench_util.hpp"

#include "gtpar/ab/minimax_simulator.hpp"
#include "gtpar/analysis/bounds.hpp"
#include "gtpar/solve/nor_simulator.hpp"
#include "gtpar/solve/sequential_solve.hpp"
#include "gtpar/tree/generators.hpp"

int main() {
  using namespace gtpar;
  bench::banner("E8", "Section 8 conjecture: higher widths keep speed-up linear in "
                      "processors",
                "width w eligible-leaf bound = sum_{k<=w} C(n,k)(d-1)^k");

  {
    const unsigned n = 14, d = 2;
    const Tree t = make_worst_case_nor(d, n, false);
    const std::uint64_t s = sequential_solve_work(t);
    std::printf("-- B(2,14) worst case, S(T) = %llu\n",
                static_cast<unsigned long long>(s));
    bench::Table table({"width", "proc bound", "max degree", "avg degree", "steps",
                        "speed-up", "SU / max degree"});
    for (unsigned w = 0; w <= 4; ++w) {
      const auto run = run_parallel_solve(t, w);
      const double speedup = double(s) / double(run.stats.steps);
      table.row({bench::fmt(w), bench::fmt(width_processor_bound(n, d, w)),
                 bench::fmt(std::uint64_t(run.stats.max_degree)),
                 bench::fmt(run.stats.average_degree()),
                 bench::fmt(run.stats.steps), bench::fmt(speedup),
                 bench::fmt(speedup / double(run.stats.max_degree))});
    }
    table.print();
  }

  {
    const unsigned n = 14, d = 2;
    const Tree t = make_uniform_iid_nor(d, n, golden_bias(), 9);
    const std::uint64_t s = sequential_solve_work(t);
    std::printf("-- B(2,14) iid golden, S(T) = %llu\n",
                static_cast<unsigned long long>(s));
    bench::Table table({"width", "proc bound", "max degree", "steps", "speed-up",
                        "SU / max degree"});
    for (unsigned w = 0; w <= 4; ++w) {
      const auto run = run_parallel_solve(t, w);
      const double speedup = double(s) / double(run.stats.steps);
      table.row({bench::fmt(w), bench::fmt(width_processor_bound(n, d, w)),
                 bench::fmt(std::uint64_t(run.stats.max_degree)),
                 bench::fmt(run.stats.steps), bench::fmt(speedup),
                 bench::fmt(speedup / double(run.stats.max_degree))});
    }
    table.print();
  }

  {
    const unsigned n = 12, d = 2;
    const Tree t = make_worst_case_minimax(d, n);
    const auto seq = run_sequential_ab(t);
    std::printf("-- M(2,12) worst-case ordering (alpha-beta), S~(T) = %llu\n",
                static_cast<unsigned long long>(seq.stats.work));
    bench::Table table({"width", "max degree", "steps", "speed-up",
                        "SU / max degree"});
    for (unsigned w = 0; w <= 4; ++w) {
      const auto run = run_parallel_ab(t, w);
      const double speedup = double(seq.stats.steps) / double(run.stats.steps);
      table.row({bench::fmt(w), bench::fmt(std::uint64_t(run.stats.max_degree)),
                 bench::fmt(run.stats.steps), bench::fmt(speedup),
                 bench::fmt(speedup / double(run.stats.max_degree))});
    }
    table.print();
  }

  std::printf(
      "Reading: speed-up keeps growing with width while 'SU / max degree'\n"
      "decays only gently -- consistent with (though of course not proving)\n"
      "the paper's conjecture that fixed widths give speed-up linear in the\n"
      "processors used. The counting argument of width 1 indeed does not\n"
      "extend: max degree grows much faster than the average degree.\n\n");
  return 0;
}
