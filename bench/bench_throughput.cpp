// bench_throughput — internal performance of the evaluation machinery.
//
// Two modes:
//
//  (default)      google-benchmark micro benchmarks of the lock-step
//                 simulators (steps / node expansions per second). A
//                 regression guard for the implementation, not an
//                 experiment.
//
//  --throughput   multi-tree requests/sec of the batched engine, in two
//                 leaf-cost regimes:
//
//                 * zero leaf cost (spin): the scheduler itself is the
//                   bottleneck. Timed three ways per worker count — the
//                   work-stealing engine, the same engine on the legacy
//                   global-queue pool (scheduler ablation), and the
//                   pre-engine architecture (one fresh ThreadPool per
//                   request, one request at a time). Shared TT off so the
//                   comparison against the TT-less legacy path is
//                   apples-to-apples.
//
//                 * HEADLINE: nonzero leaf cost (200 / 2000 ns nominal,
//                   LeafCostModel::kSleep — latency-bound evaluation, so
//                   concurrency overlaps the waits even on few cores; a
//                   spin model would measure core count, not the engine).
//                   Work-stealing engine only, workers 1/2/4/8, shared TT
//                   off and grain auto; the 8-vs-1-worker ratio at 2000 ns
//                   is the scaling headline. Ablation cells at 8 workers:
//                   grain pinned to always-spawn (task-granularity cost)
//                   and shared TT on (cross-request value reuse uplift).
//
//                 Reports sustained requests/sec, request-dispatch and
//                 end-to-end completion latency (avg / p99 / p99.9 over
//                 the per-request samples of the best repetition), and
//                 scheduler task counts. Rows from schedulers that have no
//                 such counters (global-queue, legacy) carry JSON null,
//                 not zero. Also times the SoA batch leaf kernels
//                 (solve/batch_kernels.hpp) against the plain flat kernels
//                 on a leaf-heavy tree sweep — the ablation for the
//                 vectorized leaf-frontier floor. Options:
//                    --quick        smaller zero-cost stream, fewer reps
//                    --json PATH    write results as JSON (default
//                                   BENCH_throughput.json)
//                    --check        exit non-zero if any CI gate fails:
//                                   (a) the work-stealing engine is slower
//                                   than the legacy per-call pool path at
//                                   the 4-worker zero-cost workload, (b)
//                                   8-worker req/s on the 2000 ns sleep
//                                   workload is below 1.2x the 1-worker
//                                   number, (c) adaptive granularity cuts
//                                   scheduler tasks by less than 10x on
//                                   the zero-cost workload, (d) p99
//                                   completion latency exceeds 5x the mean
//                                   on the 8-worker 2000 ns sleep cell
//                                   (tail blowup; an open-loop burst
//                                   spreads completions roughly uniformly
//                                   over the wall time, so p99/avg sits
//                                   near 2x when healthy), or (e) the
//                                   batch leaf kernels are slower than the
//                                   plain flat kernels on the leaf-heavy
//                                   sweep
//                    --faults       also measure the resilience layer: the
//                                   4-worker workload re-run with the leaf
//                                   hook + retry plumbing engaged at ZERO
//                                   fault rate (its overhead is recorded as
//                                   resilience_overhead_at_zero_faults and
//                                   expected < 3%), and once more under a
//                                   10% transient-fault storm with retries
//                                   (throughput under chaos, informational)
#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include "bench/bench_util.hpp"
#include "gtpar/ab/minimax_simulator.hpp"
#include "gtpar/common.hpp"
#include "gtpar/engine/api.hpp"
#include "gtpar/engine/engine.hpp"
#include "gtpar/engine/resilience.hpp"
#include "gtpar/expand/nor_expansion.hpp"
#include "gtpar/expand/tree_source.hpp"
#include "gtpar/solve/batch_kernels.hpp"
#include "gtpar/solve/flat_kernels.hpp"
#include "gtpar/solve/nor_simulator.hpp"
#include "gtpar/solve/sequential_solve.hpp"
#include "gtpar/threads/mt_ab.hpp"
#include "gtpar/threads/mt_solve.hpp"
#include "gtpar/threads/thread_pool.hpp"
#include "gtpar/tree/generators.hpp"

namespace gtpar {
namespace {

// --- Micro benchmarks (unchanged role: simulator regression guard). ---------

void BM_SequentialSolveRecursive(benchmark::State& state) {
  const Tree t = make_worst_case_nor(2, unsigned(state.range(0)), false);
  for (auto _ : state) benchmark::DoNotOptimize(sequential_solve_work(t));
  state.SetItemsProcessed(std::int64_t(state.iterations()) *
                          std::int64_t(t.num_leaves()));
}
BENCHMARK(BM_SequentialSolveRecursive)->Arg(12)->Arg(16);

void BM_ParallelSolveLockStep(benchmark::State& state) {
  const Tree t = make_worst_case_nor(2, unsigned(state.range(0)), false);
  std::uint64_t work = 0;
  for (auto _ : state) {
    const auto run = run_parallel_solve(t, 1);
    benchmark::DoNotOptimize(run.value);
    work = run.stats.work;
  }
  state.SetItemsProcessed(std::int64_t(state.iterations()) * std::int64_t(work));
}
BENCHMARK(BM_ParallelSolveLockStep)->Arg(12)->Arg(16);

void BM_ParallelAbLockStep(benchmark::State& state) {
  const Tree t = make_worst_case_minimax(2, unsigned(state.range(0)));
  std::uint64_t work = 0;
  for (auto _ : state) {
    const auto run = run_parallel_ab(t, 1);
    benchmark::DoNotOptimize(run.value);
    work = run.stats.work;
  }
  state.SetItemsProcessed(std::int64_t(state.iterations()) * std::int64_t(work));
}
BENCHMARK(BM_ParallelAbLockStep)->Arg(10)->Arg(12);

void BM_NodeExpansion(benchmark::State& state) {
  const WorstCaseNorSource src(2, unsigned(state.range(0)), false);
  std::uint64_t work = 0;
  for (auto _ : state) {
    const auto run = run_n_parallel_solve(src, 1);
    benchmark::DoNotOptimize(run.value);
    work = run.stats.work;
  }
  state.SetItemsProcessed(std::int64_t(state.iterations()) * std::int64_t(work));
}
BENCHMARK(BM_NodeExpansion)->Arg(12)->Arg(14);

// --- Engine throughput mode. ------------------------------------------------

struct CellResult {
  unsigned workers = 0;
  const char* scheduler = "";
  std::size_t requests = 0;
  std::uint64_t leaf_cost_ns = 0;  // nominal per-leaf cost of the workload
  std::uint64_t wall_ns = 0;       // best repetition
  double rps = 0.0;                // requests/sec at the best repetition
  /// Per-request latency distribution at the best repetition, sampled from
  /// the job handles (SearchJob::dispatch_ns / completion_ns). false on
  /// the legacy path, which never goes through Engine::submit() — the JSON
  /// then carries null for these fields instead of fake zeros.
  bool has_latency = false;
  std::uint64_t avg_dispatch_ns = 0;
  std::uint64_t max_dispatch_ns = 0;
  std::uint64_t p99_dispatch_ns = 0;
  std::uint64_t p999_dispatch_ns = 0;
  std::uint64_t avg_completion_ns = 0;
  std::uint64_t p99_completion_ns = 0;
  std::uint64_t p999_completion_ns = 0;
  /// Work-stealing scheduler counters. false for the global-queue and
  /// legacy rows: those schedulers simply have no such counters, and a
  /// zero would read as a measurement — the JSON carries null.
  bool has_sched = false;
  WorkStealingStats sched_stats{};
  TranspositionTable::Stats tt{};  // zeros when the shared TT is off
};

/// A tree plus which value domain it carries (NOR trees hold {0,1} leaves,
/// MIN/MAX trees arbitrary values); the Tree class itself doesn't know.
struct TaggedTree {
  Tree tree;
  bool minimax = false;
};

/// Mixed workload over the tree set. With zero leaf cost the stream is
/// scheduler-bound (submit, wake, steal dominate); with a nonzero cost and
/// LeafCostModel::kSleep it is latency-bound and measures how well the
/// engine overlaps in-flight requests. `grain` is the per-request task
/// granularity (0 = auto-calibrated, 1 = always spawn).
std::vector<SearchRequest> build_workload(
    const std::vector<TaggedTree>& trees, std::size_t count,
    std::uint64_t leaf_cost_ns = 0,
    LeafCostModel cost_model = LeafCostModel::kSpin, std::uint64_t grain = 0) {
  std::vector<SearchRequest> reqs;
  reqs.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const TaggedTree& t = trees[i % trees.size()];
    SearchRequest req;
    req.tree = &t.tree;
    req.leaf_cost_ns = leaf_cost_ns;
    req.cost_model = cost_model;
    req.grain = grain;
    req.width = 1 + unsigned(i % 3);
    req.algorithm =
        t.minimax ? Algorithm::kMtParallelAb : Algorithm::kMtParallelSolve;
    reqs.push_back(req);
  }
  return reqs;
}

/// The pre-engine architecture, reproduced exactly: requests served one at
/// a time, each constructing (and joining) its own global-queue ThreadPool
/// — the old self-scheduling mt_* entrypoints gave callers no way to share
/// a scheduler across searches.
CellResult run_legacy_cell(unsigned workers, const std::vector<SearchRequest>& reqs,
                           int reps) {
  CellResult cell;
  cell.workers = workers;
  cell.scheduler = "legacy-threadpool";
  cell.requests = reqs.size();
  if (!reqs.empty()) cell.leaf_cost_ns = reqs.front().leaf_cost_ns;
  cell.wall_ns = UINT64_MAX;
  for (int rep = 0; rep < reps; ++rep) {
    const auto start = std::chrono::steady_clock::now();
    for (const SearchRequest& req : reqs) {
      ThreadPool pool(workers);
      if (req.algorithm == Algorithm::kMtParallelSolve) {
        MtSolveOptions opt;
        opt.leaf_cost_ns = req.leaf_cost_ns;
        opt.cost_model = req.cost_model;
        opt.width = req.width;
        opt.grain_ns = 1;  // pre-grain behaviour: every scout is a task
        const auto r = mt_parallel_solve(*req.tree, opt, pool);
        if (!r.complete) std::fprintf(stderr, "warning: incomplete search\n");
      } else {
        MtAbOptions opt;
        opt.leaf_cost_ns = req.leaf_cost_ns;
        opt.cost_model = req.cost_model;
        opt.width = req.width;
        opt.grain_ns = 1;  // pre-grain behaviour: every scout is a task
        const auto r = mt_parallel_ab(*req.tree, opt, pool);
        if (!r.complete) std::fprintf(stderr, "warning: incomplete search\n");
      }
    }
    const auto end = std::chrono::steady_clock::now();
    const auto wall = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(end - start).count());
    cell.wall_ns = std::min(cell.wall_ns, wall);
  }
  cell.rps = double(cell.requests) / (double(cell.wall_ns) / 1e9);
  return cell;
}

/// One engine cell: a fresh Engine per repetition (stats are per-rep),
/// best-of-reps wall time. `tt_entries` = 0 keeps the shared TT off, so
/// cells are comparable against TT-less baselines unless a cell opts in.
CellResult run_cell(Engine::Scheduler scheduler, unsigned workers,
                    const std::vector<SearchRequest>& reqs, int reps,
                    const char* label = nullptr, std::size_t tt_entries = 0) {
  CellResult cell;
  cell.workers = workers;
  cell.scheduler =
      label != nullptr ? label
      : scheduler == Engine::Scheduler::kWorkStealing ? "work-stealing"
                                                      : "global-queue";
  cell.requests = reqs.size();
  if (!reqs.empty()) cell.leaf_cost_ns = reqs.front().leaf_cost_ns;
  cell.wall_ns = UINT64_MAX;
  cell.has_latency = true;
  cell.has_sched = scheduler == Engine::Scheduler::kWorkStealing;
  std::vector<double> dispatch_ns, completion_ns;  // best repetition's samples
  for (int rep = 0; rep < reps; ++rep) {
    Engine::Options opt;
    opt.workers = workers;
    opt.scheduler = scheduler;
    opt.tt_entries = tt_entries;
    Engine eng(opt);
    std::vector<SearchJob> jobs;
    jobs.reserve(reqs.size());
    // Submit the whole stream, then wait in order — what run_all() does,
    // inlined so the per-request latency samples can be harvested from
    // the job handles afterwards.
    const auto start = std::chrono::steady_clock::now();
    for (const SearchRequest& req : reqs) jobs.push_back(eng.submit(req));
    for (SearchJob& job : jobs)
      if (!job.wait().complete)
        std::fprintf(stderr, "warning: incomplete search\n");
    const auto end = std::chrono::steady_clock::now();
    const auto wall = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(end - start).count());
    if (wall < cell.wall_ns) {
      cell.wall_ns = wall;
      const EngineStats s = eng.stats();
      cell.avg_dispatch_ns = s.completed ? s.total_dispatch_ns / s.completed : 0;
      cell.max_dispatch_ns = s.max_dispatch_ns;
      cell.sched_stats = s.scheduler;
      cell.tt = s.tt;
      dispatch_ns.clear();
      completion_ns.clear();
      for (SearchJob& job : jobs) {
        dispatch_ns.push_back(double(job.dispatch_ns()));
        completion_ns.push_back(double(job.completion_ns()));
      }
    }
  }
  cell.rps = double(cell.requests) / (double(cell.wall_ns) / 1e9);
  if (!completion_ns.empty()) {
    double sum = 0.0;
    for (const double c : completion_ns) sum += c;
    cell.avg_completion_ns =
        std::uint64_t(sum / double(completion_ns.size()));
    // percentile() sorts in place, so the two quantiles share one sort.
    cell.p99_dispatch_ns = std::uint64_t(bench::percentile(dispatch_ns, 0.99));
    cell.p999_dispatch_ns =
        std::uint64_t(bench::percentile(dispatch_ns, 0.999));
    cell.p99_completion_ns =
        std::uint64_t(bench::percentile(completion_ns, 0.99));
    cell.p999_completion_ns =
        std::uint64_t(bench::percentile(completion_ns, 0.999));
  }
  return cell;
}

// --- Resilience overhead cells (--faults). ----------------------------------

/// Stateless no-op hook: prices the per-leaf injection point + retry
/// bookkeeping on the hot path with nothing ever thrown. The measured
/// slowdown vs the bare 4-worker cell is the cost every production caller
/// pays for having the resilience layer armed.
class NoopHook final : public LeafHook {
 public:
  void on_leaf(NodeId, unsigned) override {}
};

/// Deterministic transient-fault storm: ~`rate` of leaves throw on their
/// first evaluation attempt and succeed on retry. Stateless schedule (a
/// hash of the leaf id), so concurrent workers and repeated repetitions
/// see the same faults.
class FlakyHook final : public LeafHook {
 public:
  FlakyHook(std::uint64_t seed, double rate) : seed_(seed), rate_(rate) {}
  void on_leaf(NodeId leaf, unsigned attempt) override {
    if (attempt > 0) return;
    if (to_unit_double(mix64(hash_combine(seed_, leaf))) < rate_) {
      faults_.fetch_add(1, std::memory_order_relaxed);
      throw std::runtime_error("bench: injected transient leaf fault");
    }
  }
  std::uint64_t faults() const noexcept {
    return faults_.load(std::memory_order_relaxed);
  }

 private:
  const std::uint64_t seed_;
  const double rate_;
  std::atomic<std::uint64_t> faults_{0};
};

/// Copy of the workload with the resilience layer armed on every request.
std::vector<SearchRequest> with_resilience(std::vector<SearchRequest> reqs,
                                           LeafHook* hook, unsigned attempts) {
  for (SearchRequest& req : reqs) {
    req.leaf_hook = hook;
    req.retry.max_attempts = attempts;
  }
  return reqs;
}

// --- Batch-kernel ablation (the vectorized leaf-frontier floor). ------------

/// Best-of-`reps` wall time of `fn` applied to every tree in order.
template <class Fn>
std::uint64_t time_best_ns(const std::vector<Tree>& trees, int reps, Fn&& fn) {
  std::uint64_t best = UINT64_MAX;
  for (int rep = 0; rep < reps; ++rep) {
    const auto start = std::chrono::steady_clock::now();
    for (const Tree& t : trees) fn(t);
    const auto end = std::chrono::steady_clock::now();
    best = std::min(best, static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(end - start)
            .count()));
  }
  return best;
}

struct BatchAblation {
  const char* backend = "";          // dispatch backend of the batch legs
  std::uint64_t leaves = 0;          // total leaves per sweep (context)
  std::uint64_t solve_flat_ns = 0;   // flat_solve over the NOR sweep
  std::uint64_t solve_batch_ns = 0;  // flat_solve_batch, native backend
  std::uint64_t solve_batch_scalar_ns = 0;  // forced-scalar batch leg
  std::uint64_t ab_flat_ns = 0;
  std::uint64_t ab_batch_ns = 0;
  std::uint64_t ab_batch_scalar_ns = 0;
  double solve_speedup = 0.0;  // flat / batch — the gated ratio
  double ab_speedup = 0.0;
  double solve_vector_over_scalar = 0.0;  // scalar-batch / native-batch
  double ab_vector_over_scalar = 0.0;
};

/// Times the plain flat kernels against their batch-floored variants on
/// leaf-heavy trees: wide uniform trees put most internal nodes on the
/// leaf frontier, which is exactly the population the SoA batch reductions
/// serve. Branching 8 keeps the frontier spans a whole number of 8-wide
/// blocks; branching 5 exercises the ragged tail. A forced-scalar batch
/// leg separates the SoA-layout win from the SIMD win.
BatchAblation run_batch_ablation(int reps) {
  std::vector<Tree> nor_trees, mm_trees;
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    nor_trees.push_back(make_uniform_iid_nor(8, 4, golden_bias(), seed));
    nor_trees.push_back(make_uniform_iid_nor(5, 5, golden_bias(), 16 + seed));
    mm_trees.push_back(make_uniform_iid_minimax(8, 4, -1000, 1000, seed));
    mm_trees.push_back(
        make_uniform_iid_minimax(5, 5, -1000, 1000, 16 + seed));
  }
  BatchAblation a;
  for (const Tree& t : nor_trees) a.leaves += t.num_leaves();
  for (const Tree& t : mm_trees) a.leaves += t.num_leaves();

  std::uint64_t sink = 0;  // keep the searches observable
  a.solve_flat_ns = time_best_ns(nor_trees, reps, [&](const Tree& t) {
    sink += flat_solve(t).leaves_evaluated;
  });
  a.ab_flat_ns = time_best_ns(mm_trees, reps, [&](const Tree& t) {
    sink += flat_alphabeta(t).leaves_evaluated;
  });
  a.backend = batch_backend_name();
  a.solve_batch_ns = time_best_ns(nor_trees, reps, [&](const Tree& t) {
    sink += flat_solve_batch(t).leaves_evaluated;
  });
  a.ab_batch_ns = time_best_ns(mm_trees, reps, [&](const Tree& t) {
    sink += flat_alphabeta_batch(t).leaves_evaluated;
  });
  set_batch_force_scalar(true);
  a.solve_batch_scalar_ns = time_best_ns(nor_trees, reps, [&](const Tree& t) {
    sink += flat_solve_batch(t).leaves_evaluated;
  });
  a.ab_batch_scalar_ns = time_best_ns(mm_trees, reps, [&](const Tree& t) {
    sink += flat_alphabeta_batch(t).leaves_evaluated;
  });
  set_batch_force_scalar(false);
  benchmark::DoNotOptimize(sink);

  a.solve_speedup =
      a.solve_batch_ns > 0 ? double(a.solve_flat_ns) / double(a.solve_batch_ns)
                           : 0.0;
  a.ab_speedup =
      a.ab_batch_ns > 0 ? double(a.ab_flat_ns) / double(a.ab_batch_ns) : 0.0;
  a.solve_vector_over_scalar =
      a.solve_batch_ns > 0
          ? double(a.solve_batch_scalar_ns) / double(a.solve_batch_ns)
          : 0.0;
  a.ab_vector_over_scalar =
      a.ab_batch_ns > 0 ? double(a.ab_batch_scalar_ns) / double(a.ab_batch_ns)
                        : 0.0;
  return a;
}

/// Headline ratios reported at the top of the JSON (and gated by --check).
struct Headlines {
  double ws_over_legacy_at_4 = 0.0;        // zero-cost grid
  double scaling_8v1_at_2000ns = 0.0;      // sleep sweep (the headline)
  double task_reduction_auto_grain = 0.0;  // always-spawn tasks / auto tasks
  double tt_uplift_at_2000ns = 0.0;        // shared-TT rps / TT-off rps, 8 workers
  double p99_completion_over_avg = 0.0;    // 8-worker 2000 ns sleep cell
  double batch_kernel_speedup = 0.0;       // min(solve, ab) flat/batch ratio
};

/// A field value that is either a measured number or JSON null (a counter
/// the row's scheduler / code path doesn't have — see CellResult).
std::string num_or_null(bool has, std::uint64_t v) {
  return has ? std::to_string(static_cast<unsigned long long>(v))
             : std::string("null");
}

void write_json(const char* path, const std::vector<CellResult>& cells,
                std::size_t requests, int reps, const Headlines& h,
                const BatchAblation& batch, bool faults,
                double zero_fault_overhead, double storm_rps_ratio) {
  std::FILE* f = std::fopen(path, "w");
  if (!f) {
    std::fprintf(stderr, "cannot open %s for writing\n", path);
    return;
  }
  std::fprintf(f, "{\n  \"benchmark\": \"engine_throughput\",\n");
  std::fprintf(f, "  \"workload\": {\"requests\": %zu, \"repetitions\": %d, "
                  "\"widths\": [1, 2, 3], \"leaf_cost_sweep_ns\": [0, 200, 2000], "
                  "\"nonzero_cost_model\": \"sleep\"},\n",
               requests, reps);
  std::fprintf(f, "  \"headline\": {\n");
  std::fprintf(f, "    \"scaling_8v1_rps_at_2000ns_sleep\": %.3f,\n",
               h.scaling_8v1_at_2000ns);
  std::fprintf(f, "    \"task_reduction_auto_grain_vs_always_spawn\": %.1f,\n",
               h.task_reduction_auto_grain);
  std::fprintf(f, "    \"shared_tt_rps_uplift_at_2000ns_8_workers\": %.3f,\n",
               h.tt_uplift_at_2000ns);
  std::fprintf(f, "    \"ws_engine_over_legacy_rps_at_4_workers\": %.3f,\n",
               h.ws_over_legacy_at_4);
  std::fprintf(f, "    \"p99_completion_over_avg_at_2000ns_8_workers\": %.3f,\n",
               h.p99_completion_over_avg);
  std::fprintf(f, "    \"batch_kernel_speedup\": %.3f\n",
               h.batch_kernel_speedup);
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"batch_kernels\": {\"backend\": \"%s\", "
                  "\"leaves_per_sweep\": %llu,\n",
               batch.backend,
               static_cast<unsigned long long>(batch.leaves));
  std::fprintf(f, "    \"solve_flat_ns\": %llu, \"solve_batch_ns\": %llu, "
                  "\"solve_batch_scalar_ns\": %llu, \"solve_speedup\": %.3f,\n",
               static_cast<unsigned long long>(batch.solve_flat_ns),
               static_cast<unsigned long long>(batch.solve_batch_ns),
               static_cast<unsigned long long>(batch.solve_batch_scalar_ns),
               batch.solve_speedup);
  std::fprintf(f, "    \"ab_flat_ns\": %llu, \"ab_batch_ns\": %llu, "
                  "\"ab_batch_scalar_ns\": %llu, \"ab_speedup\": %.3f,\n",
               static_cast<unsigned long long>(batch.ab_flat_ns),
               static_cast<unsigned long long>(batch.ab_batch_ns),
               static_cast<unsigned long long>(batch.ab_batch_scalar_ns),
               batch.ab_speedup);
  std::fprintf(f, "    \"solve_vector_over_scalar\": %.3f, "
                  "\"ab_vector_over_scalar\": %.3f},\n",
               batch.solve_vector_over_scalar, batch.ab_vector_over_scalar);
  if (faults) {
    std::fprintf(f, "  \"resilience_overhead_at_zero_faults\": %.4f,\n",
                 zero_fault_overhead);
    std::fprintf(f, "  \"retry_storm_rps_over_plain\": %.3f,\n", storm_rps_ratio);
  }
  std::fprintf(f, "  \"results\": [\n");
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const CellResult& c = cells[i];
    std::fprintf(
        f,
        "    {\"workers\": %u, \"scheduler\": \"%s\", \"requests\": %zu, "
        "\"leaf_cost_ns\": %llu, "
        "\"wall_ns\": %llu, \"requests_per_sec\": %.1f, "
        "\"avg_dispatch_ns\": %s, \"max_dispatch_ns\": %s, "
        "\"p99_dispatch_ns\": %s, \"p999_dispatch_ns\": %s, "
        "\"avg_completion_ns\": %s, \"p99_completion_ns\": %s, "
        "\"p999_completion_ns\": %s, "
        "\"tasks_executed\": %s, \"steals\": %s, \"inline_runs\": %s, "
        "\"parks\": %s, \"tt_probes\": %llu, \"tt_hits\": %llu}%s\n",
        c.workers, c.scheduler, c.requests,
        static_cast<unsigned long long>(c.leaf_cost_ns),
        static_cast<unsigned long long>(c.wall_ns), c.rps,
        num_or_null(c.has_latency, c.avg_dispatch_ns).c_str(),
        num_or_null(c.has_latency, c.max_dispatch_ns).c_str(),
        num_or_null(c.has_latency, c.p99_dispatch_ns).c_str(),
        num_or_null(c.has_latency, c.p999_dispatch_ns).c_str(),
        num_or_null(c.has_latency, c.avg_completion_ns).c_str(),
        num_or_null(c.has_latency, c.p99_completion_ns).c_str(),
        num_or_null(c.has_latency, c.p999_completion_ns).c_str(),
        num_or_null(c.has_sched, c.sched_stats.executed).c_str(),
        num_or_null(c.has_sched, c.sched_stats.steals).c_str(),
        num_or_null(c.has_sched, c.sched_stats.inline_runs).c_str(),
        num_or_null(c.has_sched, c.sched_stats.parks).c_str(),
        static_cast<unsigned long long>(c.tt.probes),
        static_cast<unsigned long long>(c.tt.hits),
        i + 1 < cells.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path);
}

int run_throughput(bool quick, const char* json_path, bool check, bool faults) {
  // Tree mix: pruning-friendly NOR, worst-case NOR (deep spines, many
  // scouts), and MIN/MAX — different cascade shapes and task counts.
  std::vector<TaggedTree> trees;
  for (unsigned seed = 1; seed <= 4; ++seed)
    trees.push_back({make_uniform_iid_nor(2, 10, golden_bias(), seed), false});
  trees.push_back({make_worst_case_nor(2, 9, false), false});
  trees.push_back({make_worst_case_nor(3, 6, false), false});
  for (unsigned seed = 1; seed <= 4; ++seed)
    trees.push_back({make_uniform_iid_minimax(2, 9, -100, 100, seed), true});

  const std::size_t count = quick ? 64 : 256;
  const int reps = quick ? 3 : 5;
  // The sleep sweep pays real wall time per leaf (a nominal 200-2000 ns
  // sleep costs ~70 us on a stock Linux timer slack), so it runs a fixed
  // modest stream with few reps regardless of --quick.
  const std::size_t sweep_count = 64;
  const int sweep_reps = 2;
  const std::vector<SearchRequest> reqs = build_workload(trees, count);

  std::printf("engine throughput: %zu mixed requests, best of %d reps\n\n", count,
              reps);
  std::printf("| workers | scheduler         | leaf ns | req/s    | avg dispatch | p99 dispatch | p99 compl    | tasks  | steals |\n");
  std::printf("|---------|-------------------|---------|----------|--------------|--------------|--------------|--------|--------|\n");

  std::vector<CellResult> cells;
  double ws4 = 0.0, legacy4 = 0.0;
  std::uint64_t tasks_auto_8 = 0;
  // "-" where the row's code path has no such counter (see CellResult).
  const auto ns_or_dash = [](bool has, std::uint64_t v) {
    return has ? std::to_string(static_cast<unsigned long long>(v)) + " ns"
               : std::string("-");
  };
  const auto n_or_dash = [](bool has, std::uint64_t v) {
    return has ? std::to_string(static_cast<unsigned long long>(v))
               : std::string("-");
  };
  const auto emit = [&](const CellResult& c) {
    std::printf(
        "| %-7u | %-17s | %-7llu | %-8.0f | %12s | %12s | %12s | %-6s | %-6s |\n",
        c.workers, c.scheduler, static_cast<unsigned long long>(c.leaf_cost_ns),
        c.rps,
        ns_or_dash(c.has_latency, c.avg_dispatch_ns).c_str(),
        ns_or_dash(c.has_latency, c.p99_dispatch_ns).c_str(),
        ns_or_dash(c.has_latency, c.p99_completion_ns).c_str(),
        n_or_dash(c.has_sched, c.sched_stats.executed).c_str(),
        n_or_dash(c.has_sched, c.sched_stats.steals).c_str());
    cells.push_back(c);
  };

  // Zero-cost grid: scheduler-bound, all three architectures.
  for (unsigned workers : {1u, 2u, 4u, 8u}) {
    const CellResult ws =
        run_cell(Engine::Scheduler::kWorkStealing, workers, reqs, reps);
    const CellResult gq =
        run_cell(Engine::Scheduler::kGlobalQueue, workers, reqs, reps);
    const CellResult legacy = run_legacy_cell(workers, reqs, reps);
    emit(ws);
    emit(gq);
    emit(legacy);
    if (workers == 4) {
      ws4 = ws.rps;
      legacy4 = legacy.rps;
    }
    if (workers == 8) tasks_auto_8 = ws.sched_stats.executed;
  }

  // Granularity ablation at zero cost: the same stream with grain pinned
  // to always-spawn reproduces the pre-grain task flood; the ratio against
  // the auto-grain cell is the task-reduction headline.
  const CellResult grain_off_c0 =
      run_cell(Engine::Scheduler::kWorkStealing, 8,
               build_workload(trees, count, 0, LeafCostModel::kSpin, 1), reps,
               "ws-grain-off");
  emit(grain_off_c0);
  const double task_reduction =
      tasks_auto_8 > 0
          ? double(grain_off_c0.sched_stats.executed) / double(tasks_auto_8)
          : 0.0;

  // HEADLINE sweep: latency-bound leaves (kSleep), work-stealing engine,
  // TT off, auto grain. Scaling here comes from overlapping in-flight
  // requests' leaf waits, so it holds even on a single-core runner.
  double sleep1_2000 = 0.0, sleep8_2000 = 0.0;
  CellResult sleep8_cell;  // the p99-gated cell (8 workers, 2000 ns sleep)
  std::vector<SearchRequest> sweep_2000;
  for (const std::uint64_t cost : {std::uint64_t{200}, std::uint64_t{2000}}) {
    const std::vector<SearchRequest> sreqs =
        build_workload(trees, sweep_count, cost, LeafCostModel::kSleep, 0);
    for (unsigned workers : {1u, 2u, 4u, 8u}) {
      const CellResult c = run_cell(Engine::Scheduler::kWorkStealing, workers,
                                    sreqs, sweep_reps);
      emit(c);
      if (cost == 2000) {
        if (workers == 1) sleep1_2000 = c.rps;
        if (workers == 8) {
          sleep8_2000 = c.rps;
          sleep8_cell = c;
        }
      }
    }
    if (cost == 2000) sweep_2000 = sreqs;
  }
  const double scaling_8v1 =
      sleep1_2000 > 0.0 ? sleep8_2000 / sleep1_2000 : 0.0;

  // Ablations at 8 workers / 2000 ns: grain pinned to always-spawn (what
  // adaptive granularity buys under real leaf cost), and the shared TT
  // switched on (cross-request value reuse on the repeating tree mix).
  const CellResult grain_off_sleep =
      run_cell(Engine::Scheduler::kWorkStealing, 8,
               build_workload(trees, sweep_count, 2000, LeafCostModel::kSleep, 1),
               sweep_reps, "ws-grain-off");
  emit(grain_off_sleep);
  const CellResult tt_on =
      run_cell(Engine::Scheduler::kWorkStealing, 8, sweep_2000, sweep_reps,
               "ws+shared-tt", std::size_t{1} << 16);
  emit(tt_on);
  const double tt_uplift = sleep8_2000 > 0.0 ? tt_on.rps / sleep8_2000 : 0.0;

  // Resilience overhead: re-run the 4-worker work-stealing cell with the
  // leaf hook + retry plumbing armed but inert (zero faults actually
  // fired), then under a 10% transient-fault storm cleared by retries.
  double zero_fault_overhead = 0.0, storm_ratio = 0.0;
  std::uint64_t storm_faults = 0;
  if (faults) {
    NoopHook noop;
    const CellResult armed =
        run_cell(Engine::Scheduler::kWorkStealing, 4,
                 with_resilience(reqs, &noop, 4), reps, "ws+inert-hook");
    FlakyHook flaky(0x9e3779b97f4a7c15ull, 0.10);
    const CellResult storm =
        run_cell(Engine::Scheduler::kWorkStealing, 4,
                 with_resilience(reqs, &flaky, 4), reps, "ws+retry-storm");
    emit(armed);
    emit(storm);
    zero_fault_overhead = armed.rps > 0 ? ws4 / armed.rps - 1.0 : 0.0;
    storm_ratio = ws4 > 0.0 ? storm.rps / ws4 : 0.0;
    storm_faults = flaky.faults();
  }

  // Batch-kernel ablation: single-threaded, so it runs after the engine
  // cells rather than interleaved with them. Each sweep is only a few
  // microseconds, so best-of-many is what makes the gated ratio stable
  // on a noisy shared core — a preempted rep never becomes the minimum.
  const BatchAblation batch = run_batch_ablation(quick ? 25 : 50);

  Headlines h;
  h.ws_over_legacy_at_4 = legacy4 > 0 ? ws4 / legacy4 : 0.0;
  h.scaling_8v1_at_2000ns = scaling_8v1;
  h.task_reduction_auto_grain = task_reduction;
  h.tt_uplift_at_2000ns = tt_uplift;
  h.p99_completion_over_avg =
      sleep8_cell.avg_completion_ns > 0
          ? double(sleep8_cell.p99_completion_ns) /
                double(sleep8_cell.avg_completion_ns)
          : 0.0;
  h.batch_kernel_speedup = std::min(batch.solve_speedup, batch.ab_speedup);

  std::printf("\nHEADLINE: 8-vs-1-worker scaling on the 2000 ns sleep workload: %.2fx\n",
              scaling_8v1);
  std::printf("adaptive granularity task reduction (always-spawn / auto, 8 workers): "
              "%.0fx (%llu -> %llu tasks)\n",
              task_reduction,
              static_cast<unsigned long long>(grain_off_c0.sched_stats.executed),
              static_cast<unsigned long long>(tasks_auto_8));
  std::printf("shared-TT uplift at 2000 ns / 8 workers: %.2fx "
              "(%llu probes, %llu hits)\n",
              tt_uplift, static_cast<unsigned long long>(tt_on.tt.probes),
              static_cast<unsigned long long>(tt_on.tt.hits));
  std::printf("work-stealing engine vs legacy per-call pools at 4 workers: %.2fx\n",
              h.ws_over_legacy_at_4);
  std::printf("completion tail at 2000 ns / 8 workers: avg %llu ns, "
              "p99 %llu ns, p99.9 %llu ns (p99/avg %.2fx)\n",
              static_cast<unsigned long long>(sleep8_cell.avg_completion_ns),
              static_cast<unsigned long long>(sleep8_cell.p99_completion_ns),
              static_cast<unsigned long long>(sleep8_cell.p999_completion_ns),
              h.p99_completion_over_avg);
  std::printf("batch leaf kernels (%s backend, %llu leaves/sweep): "
              "solve %.2fx over flat (%llu -> %llu ns), "
              "ab %.2fx over flat (%llu -> %llu ns); "
              "vector over forced-scalar: solve %.2fx, ab %.2fx\n",
              batch.backend, static_cast<unsigned long long>(batch.leaves),
              batch.solve_speedup,
              static_cast<unsigned long long>(batch.solve_flat_ns),
              static_cast<unsigned long long>(batch.solve_batch_ns),
              batch.ab_speedup,
              static_cast<unsigned long long>(batch.ab_flat_ns),
              static_cast<unsigned long long>(batch.ab_batch_ns),
              batch.solve_vector_over_scalar, batch.ab_vector_over_scalar);
  if (faults) {
    std::printf(
        "\nresilience overhead at zero fault rate (4 workers): %+.2f%% "
        "(target < 3%%)\n",
        zero_fault_overhead * 100.0);
    std::printf(
        "throughput under 10%% transient-fault storm with retries: %.2fx "
        "plain (%llu faults injected and retried)\n",
        storm_ratio, static_cast<unsigned long long>(storm_faults));
  }

  write_json(json_path, cells, count, reps, h, batch, faults,
             zero_fault_overhead, storm_ratio);

  if (check && h.ws_over_legacy_at_4 < 1.0) {
    std::fprintf(stderr,
                 "FAIL: work-stealing engine slower than the legacy per-call "
                 "ThreadPool path at the 4-worker mixed workload (%.2fx)\n",
                 h.ws_over_legacy_at_4);
    return 1;
  }
  if (check && scaling_8v1 < 1.2) {
    std::fprintf(stderr,
                 "FAIL: 8-worker work-stealing throughput on the 2000 ns "
                 "sleep workload is only %.2fx the 1-worker number "
                 "(gate: 1.2x)\n",
                 scaling_8v1);
    return 1;
  }
  if (check && task_reduction < 10.0) {
    std::fprintf(stderr,
                 "FAIL: adaptive granularity cut scheduler tasks by only "
                 "%.1fx on the zero-cost workload (gate: 10x)\n",
                 task_reduction);
    return 1;
  }
  if (check && h.p99_completion_over_avg > 5.0) {
    std::fprintf(stderr,
                 "FAIL: p99 completion latency is %.2fx the mean on the "
                 "8-worker 2000 ns sleep cell (gate: 5x; an open-loop "
                 "burst sits near 2x when healthy)\n",
                 h.p99_completion_over_avg);
    return 1;
  }
  if (check && h.batch_kernel_speedup < 1.0) {
    std::fprintf(stderr,
                 "FAIL: batch leaf kernels slower than the plain flat "
                 "kernels on the leaf-heavy sweep (min speedup %.2fx, "
                 "solve %.2fx / ab %.2fx; gate: 1.0x)\n",
                 h.batch_kernel_speedup, batch.solve_speedup,
                 batch.ab_speedup);
    return 1;
  }
  if (check && faults && zero_fault_overhead > 0.10) {
    std::fprintf(stderr,
                 "FAIL: inert resilience plumbing costs %.1f%% at the "
                 "4-worker workload (budget: 3%%, hard gate at 10%% to "
                 "absorb shared-runner noise)\n",
                 zero_fault_overhead * 100.0);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace gtpar

int main(int argc, char** argv) {
  bool throughput = false, quick = false, checkflag = false, faults = false;
  const char* json_path = "BENCH_throughput.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--throughput") == 0) throughput = true;
    else if (std::strcmp(argv[i], "--quick") == 0) { throughput = true; quick = true; }
    else if (std::strcmp(argv[i], "--check") == 0) { throughput = true; checkflag = true; }
    else if (std::strcmp(argv[i], "--faults") == 0) { throughput = true; faults = true; }
    else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) json_path = argv[++i];
  }
  if (throughput) return gtpar::run_throughput(quick, json_path, checkflag, faults);

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
