// bench_throughput — internal performance of the evaluation machinery.
//
// Two modes:
//
//  (default)      google-benchmark micro benchmarks of the lock-step
//                 simulators (steps / node expansions per second). A
//                 regression guard for the implementation, not an
//                 experiment.
//
//  --throughput   multi-tree requests/sec of the batched engine: a mixed
//                 stream of Mt search requests (NOR + MIN/MAX trees,
//                 widths 1-3, zero leaf cost so the scheduler itself is
//                 the bottleneck) is timed three ways per worker count —
//                 the work-stealing engine, the same engine on the legacy
//                 global-queue pool (scheduler ablation), and the
//                 pre-engine architecture (one fresh ThreadPool per
//                 request, requests served one at a time, as the old
//                 self-scheduling mt_* entrypoints worked). Reports
//                 sustained requests/sec plus request-dispatch latency.
//                 Options:
//                    --quick        smaller stream, fewer repetitions
//                    --json PATH    write results as JSON (default
//                                   BENCH_throughput.json)
//                    --check        exit non-zero if the work-stealing
//                                   engine is slower than the legacy
//                                   per-call pool path at the 4-worker
//                                   mixed workload (the CI gate)
//                    --faults       also measure the resilience layer: the
//                                   4-worker workload re-run with the leaf
//                                   hook + retry plumbing engaged at ZERO
//                                   fault rate (its overhead is recorded as
//                                   resilience_overhead_at_zero_faults and
//                                   expected < 3%), and once more under a
//                                   10% transient-fault storm with retries
//                                   (throughput under chaos, informational)
#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include "gtpar/ab/minimax_simulator.hpp"
#include "gtpar/common.hpp"
#include "gtpar/engine/api.hpp"
#include "gtpar/engine/engine.hpp"
#include "gtpar/engine/resilience.hpp"
#include "gtpar/expand/nor_expansion.hpp"
#include "gtpar/expand/tree_source.hpp"
#include "gtpar/solve/nor_simulator.hpp"
#include "gtpar/solve/sequential_solve.hpp"
#include "gtpar/threads/mt_ab.hpp"
#include "gtpar/threads/mt_solve.hpp"
#include "gtpar/threads/thread_pool.hpp"
#include "gtpar/tree/generators.hpp"

namespace gtpar {
namespace {

// --- Micro benchmarks (unchanged role: simulator regression guard). ---------

void BM_SequentialSolveRecursive(benchmark::State& state) {
  const Tree t = make_worst_case_nor(2, unsigned(state.range(0)), false);
  for (auto _ : state) benchmark::DoNotOptimize(sequential_solve_work(t));
  state.SetItemsProcessed(std::int64_t(state.iterations()) *
                          std::int64_t(t.num_leaves()));
}
BENCHMARK(BM_SequentialSolveRecursive)->Arg(12)->Arg(16);

void BM_ParallelSolveLockStep(benchmark::State& state) {
  const Tree t = make_worst_case_nor(2, unsigned(state.range(0)), false);
  std::uint64_t work = 0;
  for (auto _ : state) {
    const auto run = run_parallel_solve(t, 1);
    benchmark::DoNotOptimize(run.value);
    work = run.stats.work;
  }
  state.SetItemsProcessed(std::int64_t(state.iterations()) * std::int64_t(work));
}
BENCHMARK(BM_ParallelSolveLockStep)->Arg(12)->Arg(16);

void BM_ParallelAbLockStep(benchmark::State& state) {
  const Tree t = make_worst_case_minimax(2, unsigned(state.range(0)));
  std::uint64_t work = 0;
  for (auto _ : state) {
    const auto run = run_parallel_ab(t, 1);
    benchmark::DoNotOptimize(run.value);
    work = run.stats.work;
  }
  state.SetItemsProcessed(std::int64_t(state.iterations()) * std::int64_t(work));
}
BENCHMARK(BM_ParallelAbLockStep)->Arg(10)->Arg(12);

void BM_NodeExpansion(benchmark::State& state) {
  const WorstCaseNorSource src(2, unsigned(state.range(0)), false);
  std::uint64_t work = 0;
  for (auto _ : state) {
    const auto run = run_n_parallel_solve(src, 1);
    benchmark::DoNotOptimize(run.value);
    work = run.stats.work;
  }
  state.SetItemsProcessed(std::int64_t(state.iterations()) * std::int64_t(work));
}
BENCHMARK(BM_NodeExpansion)->Arg(12)->Arg(14);

// --- Engine throughput mode. ------------------------------------------------

struct CellResult {
  unsigned workers = 0;
  const char* scheduler = "";
  std::size_t requests = 0;
  std::uint64_t wall_ns = 0;       // best repetition
  double rps = 0.0;                // requests/sec at the best repetition
  std::uint64_t avg_dispatch_ns = 0;
  std::uint64_t max_dispatch_ns = 0;
  WorkStealingStats sched_stats{};  // zeros for the global queue
};

/// A tree plus which value domain it carries (NOR trees hold {0,1} leaves,
/// MIN/MAX trees arbitrary values); the Tree class itself doesn't know.
struct TaggedTree {
  Tree tree;
  bool minimax = false;
};

/// Mixed scheduler-bound workload: many small searches with zero leaf
/// cost, so scheduling overhead (submit, wake, steal) dominates.
std::vector<SearchRequest> build_workload(const std::vector<TaggedTree>& trees,
                                          std::size_t count) {
  std::vector<SearchRequest> reqs;
  reqs.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const TaggedTree& t = trees[i % trees.size()];
    SearchRequest req;
    req.tree = &t.tree;
    req.leaf_cost_ns = 0;
    req.width = 1 + unsigned(i % 3);
    req.algorithm =
        t.minimax ? Algorithm::kMtParallelAb : Algorithm::kMtParallelSolve;
    reqs.push_back(req);
  }
  return reqs;
}

/// The pre-engine architecture, reproduced exactly: requests served one at
/// a time, each constructing (and joining) its own global-queue ThreadPool
/// — the old self-scheduling mt_* entrypoints gave callers no way to share
/// a scheduler across searches.
CellResult run_legacy_cell(unsigned workers, const std::vector<SearchRequest>& reqs,
                           int reps) {
  CellResult cell;
  cell.workers = workers;
  cell.scheduler = "legacy-threadpool";
  cell.requests = reqs.size();
  cell.wall_ns = UINT64_MAX;
  for (int rep = 0; rep < reps; ++rep) {
    const auto start = std::chrono::steady_clock::now();
    for (const SearchRequest& req : reqs) {
      ThreadPool pool(workers);
      if (req.algorithm == Algorithm::kMtParallelSolve) {
        MtSolveOptions opt;
        opt.leaf_cost_ns = req.leaf_cost_ns;
        opt.cost_model = req.cost_model;
        opt.width = req.width;
        const auto r = mt_parallel_solve(*req.tree, opt, pool);
        if (!r.complete) std::fprintf(stderr, "warning: incomplete search\n");
      } else {
        MtAbOptions opt;
        opt.leaf_cost_ns = req.leaf_cost_ns;
        opt.cost_model = req.cost_model;
        opt.width = req.width;
        const auto r = mt_parallel_ab(*req.tree, opt, pool);
        if (!r.complete) std::fprintf(stderr, "warning: incomplete search\n");
      }
    }
    const auto end = std::chrono::steady_clock::now();
    const auto wall = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(end - start).count());
    cell.wall_ns = std::min(cell.wall_ns, wall);
  }
  cell.rps = double(cell.requests) / (double(cell.wall_ns) / 1e9);
  return cell;
}

CellResult run_cell(Engine::Scheduler scheduler, unsigned workers,
                    const std::vector<SearchRequest>& reqs, int reps,
                    const char* label = nullptr) {
  CellResult cell;
  cell.workers = workers;
  cell.scheduler =
      label != nullptr ? label
      : scheduler == Engine::Scheduler::kWorkStealing ? "work-stealing"
                                                      : "global-queue";
  cell.requests = reqs.size();
  cell.wall_ns = UINT64_MAX;
  for (int rep = 0; rep < reps; ++rep) {
    Engine::Options opt;
    opt.workers = workers;
    opt.scheduler = scheduler;
    Engine eng(opt);
    const auto start = std::chrono::steady_clock::now();
    const std::vector<SearchResult> results = eng.run_all(reqs);
    const auto end = std::chrono::steady_clock::now();
    for (const SearchResult& r : results)
      if (!r.complete) std::fprintf(stderr, "warning: incomplete search\n");
    const auto wall = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(end - start).count());
    if (wall < cell.wall_ns) {
      cell.wall_ns = wall;
      const EngineStats s = eng.stats();
      cell.avg_dispatch_ns = s.completed ? s.total_dispatch_ns / s.completed : 0;
      cell.max_dispatch_ns = s.max_dispatch_ns;
      cell.sched_stats = s.scheduler;
    }
  }
  cell.rps = double(cell.requests) / (double(cell.wall_ns) / 1e9);
  return cell;
}

// --- Resilience overhead cells (--faults). ----------------------------------

/// Stateless no-op hook: prices the per-leaf injection point + retry
/// bookkeeping on the hot path with nothing ever thrown. The measured
/// slowdown vs the bare 4-worker cell is the cost every production caller
/// pays for having the resilience layer armed.
class NoopHook final : public LeafHook {
 public:
  void on_leaf(NodeId, unsigned) override {}
};

/// Deterministic transient-fault storm: ~`rate` of leaves throw on their
/// first evaluation attempt and succeed on retry. Stateless schedule (a
/// hash of the leaf id), so concurrent workers and repeated repetitions
/// see the same faults.
class FlakyHook final : public LeafHook {
 public:
  FlakyHook(std::uint64_t seed, double rate) : seed_(seed), rate_(rate) {}
  void on_leaf(NodeId leaf, unsigned attempt) override {
    if (attempt > 0) return;
    if (to_unit_double(mix64(hash_combine(seed_, leaf))) < rate_) {
      faults_.fetch_add(1, std::memory_order_relaxed);
      throw std::runtime_error("bench: injected transient leaf fault");
    }
  }
  std::uint64_t faults() const noexcept {
    return faults_.load(std::memory_order_relaxed);
  }

 private:
  const std::uint64_t seed_;
  const double rate_;
  std::atomic<std::uint64_t> faults_{0};
};

/// Copy of the workload with the resilience layer armed on every request.
std::vector<SearchRequest> with_resilience(std::vector<SearchRequest> reqs,
                                           LeafHook* hook, unsigned attempts) {
  for (SearchRequest& req : reqs) {
    req.leaf_hook = hook;
    req.retry.max_attempts = attempts;
  }
  return reqs;
}

void write_json(const char* path, const std::vector<CellResult>& cells,
                std::size_t requests, int reps, double speedup_at_4,
                bool faults, double zero_fault_overhead, double storm_rps_ratio) {
  std::FILE* f = std::fopen(path, "w");
  if (!f) {
    std::fprintf(stderr, "cannot open %s for writing\n", path);
    return;
  }
  std::fprintf(f, "{\n  \"benchmark\": \"engine_throughput\",\n");
  std::fprintf(f, "  \"workload\": {\"requests\": %zu, \"repetitions\": %d, "
                  "\"leaf_cost_ns\": 0, \"widths\": [1, 2, 3]},\n",
               requests, reps);
  std::fprintf(f, "  \"ws_engine_over_legacy_rps_at_4_workers\": %.3f,\n",
               speedup_at_4);
  if (faults) {
    std::fprintf(f, "  \"resilience_overhead_at_zero_faults\": %.4f,\n",
                 zero_fault_overhead);
    std::fprintf(f, "  \"retry_storm_rps_over_plain\": %.3f,\n", storm_rps_ratio);
  }
  std::fprintf(f, "  \"results\": [\n");
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const CellResult& c = cells[i];
    std::fprintf(
        f,
        "    {\"workers\": %u, \"scheduler\": \"%s\", \"requests\": %zu, "
        "\"wall_ns\": %llu, \"requests_per_sec\": %.1f, "
        "\"avg_dispatch_ns\": %llu, \"max_dispatch_ns\": %llu, "
        "\"tasks_executed\": %llu, \"steals\": %llu, \"inline_runs\": %llu, "
        "\"parks\": %llu}%s\n",
        c.workers, c.scheduler, c.requests,
        static_cast<unsigned long long>(c.wall_ns), c.rps,
        static_cast<unsigned long long>(c.avg_dispatch_ns),
        static_cast<unsigned long long>(c.max_dispatch_ns),
        static_cast<unsigned long long>(c.sched_stats.executed),
        static_cast<unsigned long long>(c.sched_stats.steals),
        static_cast<unsigned long long>(c.sched_stats.inline_runs),
        static_cast<unsigned long long>(c.sched_stats.parks),
        i + 1 < cells.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path);
}

int run_throughput(bool quick, const char* json_path, bool check, bool faults) {
  // Tree mix: pruning-friendly NOR, worst-case NOR (deep spines, many
  // scouts), and MIN/MAX — different cascade shapes and task counts.
  std::vector<TaggedTree> trees;
  for (unsigned seed = 1; seed <= 4; ++seed)
    trees.push_back({make_uniform_iid_nor(2, 10, golden_bias(), seed), false});
  trees.push_back({make_worst_case_nor(2, 9, false), false});
  trees.push_back({make_worst_case_nor(3, 6, false), false});
  for (unsigned seed = 1; seed <= 4; ++seed)
    trees.push_back({make_uniform_iid_minimax(2, 9, -100, 100, seed), true});

  const std::size_t count = quick ? 64 : 256;
  const int reps = quick ? 3 : 5;
  const std::vector<SearchRequest> reqs = build_workload(trees, count);

  std::printf("engine throughput: %zu mixed requests, best of %d reps\n\n", count,
              reps);
  std::printf("| workers | scheduler         | req/s    | avg dispatch | max dispatch | steals | parks |\n");
  std::printf("|---------|-------------------|----------|--------------|--------------|--------|-------|\n");

  std::vector<CellResult> cells;
  double ws4 = 0.0, legacy4 = 0.0;
  const auto emit = [&](const CellResult& c) {
    std::printf(
        "| %-7u | %-17s | %-8.0f | %9llu ns | %9llu ns | %-6llu | %-5llu |\n",
        c.workers, c.scheduler, c.rps,
        static_cast<unsigned long long>(c.avg_dispatch_ns),
        static_cast<unsigned long long>(c.max_dispatch_ns),
        static_cast<unsigned long long>(c.sched_stats.steals),
        static_cast<unsigned long long>(c.sched_stats.parks));
    cells.push_back(c);
  };
  for (unsigned workers : {1u, 2u, 4u, 8u}) {
    const CellResult ws =
        run_cell(Engine::Scheduler::kWorkStealing, workers, reqs, reps);
    const CellResult gq =
        run_cell(Engine::Scheduler::kGlobalQueue, workers, reqs, reps);
    const CellResult legacy = run_legacy_cell(workers, reqs, reps);
    emit(ws);
    emit(gq);
    emit(legacy);
    if (workers == 4) {
      ws4 = ws.rps;
      legacy4 = legacy.rps;
    }
  }

  // Resilience overhead: re-run the 4-worker work-stealing cell with the
  // leaf hook + retry plumbing armed but inert (zero faults actually
  // fired), then under a 10% transient-fault storm cleared by retries.
  double zero_fault_overhead = 0.0, storm_ratio = 0.0;
  std::uint64_t storm_faults = 0;
  if (faults) {
    NoopHook noop;
    const CellResult armed =
        run_cell(Engine::Scheduler::kWorkStealing, 4,
                 with_resilience(reqs, &noop, 4), reps, "ws+inert-hook");
    FlakyHook flaky(0x9e3779b97f4a7c15ull, 0.10);
    const CellResult storm =
        run_cell(Engine::Scheduler::kWorkStealing, 4,
                 with_resilience(reqs, &flaky, 4), reps, "ws+retry-storm");
    emit(armed);
    emit(storm);
    zero_fault_overhead = armed.rps > 0 ? ws4 / armed.rps - 1.0 : 0.0;
    storm_ratio = ws4 > 0.0 ? storm.rps / ws4 : 0.0;
    storm_faults = flaky.faults();
  }

  const double speedup = legacy4 > 0 ? ws4 / legacy4 : 0.0;
  std::printf("\nwork-stealing engine vs legacy per-call pools at 4 workers: %.2fx\n",
              speedup);
  if (faults) {
    std::printf(
        "\nresilience overhead at zero fault rate (4 workers): %+.2f%% "
        "(target < 3%%)\n",
        zero_fault_overhead * 100.0);
    std::printf(
        "throughput under 10%% transient-fault storm with retries: %.2fx "
        "plain (%llu faults injected and retried)\n",
        storm_ratio, static_cast<unsigned long long>(storm_faults));
  }

  write_json(json_path, cells, count, reps, speedup, faults,
             zero_fault_overhead, storm_ratio);

  if (check && speedup < 1.0) {
    std::fprintf(stderr,
                 "FAIL: work-stealing engine slower than the legacy per-call "
                 "ThreadPool path at the 4-worker mixed workload (%.2fx)\n",
                 speedup);
    return 1;
  }
  if (check && faults && zero_fault_overhead > 0.10) {
    std::fprintf(stderr,
                 "FAIL: inert resilience plumbing costs %.1f%% at the "
                 "4-worker workload (budget: 3%%, hard gate at 10%% to "
                 "absorb shared-runner noise)\n",
                 zero_fault_overhead * 100.0);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace gtpar

int main(int argc, char** argv) {
  bool throughput = false, quick = false, checkflag = false, faults = false;
  const char* json_path = "BENCH_throughput.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--throughput") == 0) throughput = true;
    else if (std::strcmp(argv[i], "--quick") == 0) { throughput = true; quick = true; }
    else if (std::strcmp(argv[i], "--check") == 0) { throughput = true; checkflag = true; }
    else if (std::strcmp(argv[i], "--faults") == 0) { throughput = true; faults = true; }
    else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) json_path = argv[++i];
  }
  if (throughput) return gtpar::run_throughput(quick, json_path, checkflag, faults);

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
