// bench_throughput — internal performance of the simulators themselves
// (google-benchmark): how many basic steps and node expansions per second
// the lock-step engines sustain. Not an experiment; a regression guard
// for the implementation.
#include <benchmark/benchmark.h>

#include "gtpar/ab/minimax_simulator.hpp"
#include "gtpar/expand/nor_expansion.hpp"
#include "gtpar/expand/tree_source.hpp"
#include "gtpar/solve/nor_simulator.hpp"
#include "gtpar/solve/sequential_solve.hpp"
#include "gtpar/tree/generators.hpp"

namespace gtpar {
namespace {

void BM_SequentialSolveRecursive(benchmark::State& state) {
  const Tree t = make_worst_case_nor(2, unsigned(state.range(0)), false);
  for (auto _ : state) benchmark::DoNotOptimize(sequential_solve_work(t));
  state.SetItemsProcessed(std::int64_t(state.iterations()) *
                          std::int64_t(t.num_leaves()));
}
BENCHMARK(BM_SequentialSolveRecursive)->Arg(12)->Arg(16);

void BM_ParallelSolveLockStep(benchmark::State& state) {
  const Tree t = make_worst_case_nor(2, unsigned(state.range(0)), false);
  std::uint64_t work = 0;
  for (auto _ : state) {
    const auto run = run_parallel_solve(t, 1);
    benchmark::DoNotOptimize(run.value);
    work = run.stats.work;
  }
  state.SetItemsProcessed(std::int64_t(state.iterations()) * std::int64_t(work));
}
BENCHMARK(BM_ParallelSolveLockStep)->Arg(12)->Arg(16);

void BM_ParallelAbLockStep(benchmark::State& state) {
  const Tree t = make_worst_case_minimax(2, unsigned(state.range(0)));
  std::uint64_t work = 0;
  for (auto _ : state) {
    const auto run = run_parallel_ab(t, 1);
    benchmark::DoNotOptimize(run.value);
    work = run.stats.work;
  }
  state.SetItemsProcessed(std::int64_t(state.iterations()) * std::int64_t(work));
}
BENCHMARK(BM_ParallelAbLockStep)->Arg(10)->Arg(12);

void BM_NodeExpansion(benchmark::State& state) {
  const WorstCaseNorSource src(2, unsigned(state.range(0)), false);
  std::uint64_t work = 0;
  for (auto _ : state) {
    const auto run = run_n_parallel_solve(src, 1);
    benchmark::DoNotOptimize(run.value);
    work = run.stats.work;
  }
  state.SetItemsProcessed(std::int64_t(state.iterations()) * std::int64_t(work));
}
BENCHMARK(BM_NodeExpansion)->Arg(12)->Arg(14);

}  // namespace
}  // namespace gtpar

BENCHMARK_MAIN();
