// E5 — Theorem 3 and Fact 2: Parallel alpha-beta of width 1 achieves
// S~(T)/P~(T) >= c(n+1) on uniform MIN/MAX trees, whose total work is
// lower-bounded by d^floor(n/2) + d^ceil(n/2) - 1.
#include "bench/bench_util.hpp"

#include <functional>

#include "gtpar/ab/minimax_simulator.hpp"
#include "gtpar/tree/generators.hpp"
#include "gtpar/tree/proof_tree.hpp"

namespace gtpar {
namespace {

void sweep(const char* label, unsigned d, unsigned n_max,
           const std::function<Tree(unsigned)>& make) {
  std::printf("-- %s\n", label);
  bench::Table table({"n", "Fact2 LB", "S~(T)", "P~(T) w=1", "speed-up", "n+1",
                      "c = SU/(n+1)"});
  for (unsigned n = 4; n <= n_max; n += 2) {
    const Tree t = make(n);
    const auto seq = run_sequential_ab(t);
    const auto par = run_parallel_ab(t, 1);
    const double speedup = double(seq.stats.steps) / double(par.stats.steps);
    table.row({bench::fmt(n), bench::fmt(fact2_lower_bound(d, n)),
               bench::fmt(seq.stats.work), bench::fmt(par.stats.steps),
               bench::fmt(speedup), bench::fmt(n + 1),
               bench::fmt(speedup / double(n + 1))});
  }
  table.print();
}

}  // namespace
}  // namespace gtpar

int main() {
  using namespace gtpar;
  bench::banner("E5", "Theorem 3: width-1 Parallel alpha-beta has linear speed-up",
                "S~(T) = Sequential alpha-beta leaves; P~(T) = width-1 steps of the "
                "Section 4 pruning process");

  sweep("M(2,n), worst-case move ordering (no pruning possible)", 2, 14,
        [](unsigned n) { return make_worst_case_minimax(2, n); });
  sweep("M(2,n), i.i.d. uniform leaves", 2, 14,
        [](unsigned n) { return make_uniform_iid_minimax(2, n, 0, 1 << 20, n); });
  sweep("M(2,n), realistic ordering quality 0.75", 2, 14, [](unsigned n) {
    return make_ordered_iid_minimax(2, n, 0, 1 << 20, n + 9, 0.75);
  });
  sweep("M(3,n), i.i.d. uniform leaves", 3, 8,
        [](unsigned n) { return make_uniform_iid_minimax(3, n, 0, 1 << 20, n + 3); });
  sweep("M(2,n), best-case ordering (S~ = Fact2 bound exactly)", 2, 14,
        [](unsigned n) { return make_best_case_minimax(2, n); });

  std::printf(
      "Reading: on instances with substantial sequential work the width-1\n"
      "speed-up grows linearly in n+1, mirroring Theorem 1 for MIN/MAX trees.\n"
      "On best-ordered trees S~ equals the Fact 2 bound, so there is little\n"
      "parallelism to extract (the skeleton is a double critical path) and\n"
      "the speed-up saturates near 2 -- also visible in the table.\n\n");
  return 0;
}
