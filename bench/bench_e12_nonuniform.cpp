// E12 — Corollary 2: Theorem 1 extends to near-uniform trees (node degrees
// in [alpha*d, d], root-leaf path lengths in [beta*n, n]). The table runs
// width-1 Parallel SOLVE on the random-shape family and reports speed-ups
// against the maximum height bound.
#include "bench/bench_util.hpp"

#include "gtpar/ab/minimax_simulator.hpp"
#include "gtpar/solve/nor_simulator.hpp"
#include "gtpar/solve/sequential_solve.hpp"
#include "gtpar/tree/generators.hpp"

int main() {
  using namespace gtpar;
  bench::banner("E12", "Corollary 2: linear speed-up on near-uniform trees",
                "random-shape family: degrees in [d_min,d_max], depths in "
                "[n_min,n_max]; 10 seeds per row, aggregate speed-up");

  std::printf("-- NOR trees, width-1 Parallel SOLVE\n");
  bench::Table table({"d range", "depth range", "mean S(T)", "mean P(T)",
                      "speed-up (aggregate)", "n_max+1"});
  struct Config {
    RandomShapeParams p;
  };
  const RandomShapeParams configs[] = {
      {2, 2, 10, 14, 0.25},  // exactly binary, ragged depth
      {2, 3, 10, 14, 0.25},
      {3, 4, 7, 10, 0.25},
      {2, 4, 8, 12, 0.4},
  };
  for (const auto& p : configs) {
    std::uint64_t total_s = 0, total_p = 0;
    for (std::uint64_t seed = 0; seed < 10; ++seed) {
      const Tree t = make_random_shape_nor(p, golden_bias(), seed);
      total_s += sequential_solve_work(t);
      total_p += run_parallel_solve(t, 1).stats.steps;
    }
    table.row({std::to_string(p.d_min) + "-" + std::to_string(p.d_max),
               std::to_string(p.n_min) + "-" + std::to_string(p.n_max),
               bench::fmt(total_s / 10), bench::fmt(total_p / 10),
               bench::fmt(double(total_s) / double(total_p)),
               bench::fmt(p.n_max + 1)});
  }
  table.print();

  std::printf("-- MIN/MAX trees, width-1 Parallel alpha-beta\n");
  bench::Table mm({"d range", "depth range", "mean S~(T)", "mean P~(T)",
                   "speed-up (aggregate)"});
  for (const auto& p : configs) {
    std::uint64_t total_s = 0, total_p = 0;
    for (std::uint64_t seed = 0; seed < 10; ++seed) {
      const Tree t = make_random_shape_minimax(p, 0, 1 << 20, seed);
      total_s += run_sequential_ab(t).stats.steps;
      total_p += run_parallel_ab(t, 1).stats.steps;
    }
    mm.row({std::to_string(p.d_min) + "-" + std::to_string(p.d_max),
            std::to_string(p.n_min) + "-" + std::to_string(p.n_max),
            bench::fmt(total_s / 10), bench::fmt(total_p / 10),
            bench::fmt(double(total_s) / double(total_p))});
  }
  mm.print();

  std::printf(
      "Reading: speed-ups on ragged near-uniform trees are of the same order\n"
      "as on exactly uniform ones (E2/E5), as Corollary 2 predicts.\n\n");
  return 0;
}
