// E2 — Theorem 1 (Main Theorem): Parallel SOLVE of width 1 achieves
// S(T)/P(T) >= c(n+1) on every instance of B(d,n), using n+1-ish
// processors. The table sweeps the height n for several branching factors
// and leaf distributions and reports the measured speed-up, the processor
// count actually used, and the implied constant c.
#include "bench/bench_util.hpp"

#include <functional>

#include "gtpar/solve/nor_simulator.hpp"
#include "gtpar/solve/sequential_solve.hpp"
#include "gtpar/tree/generators.hpp"

namespace gtpar {
namespace {

void sweep(const char* label, unsigned d, unsigned n_max,
           const std::function<Tree(unsigned)>& make) {
  std::printf("-- %s\n", label);
  bench::Table table({"n", "S(T)", "P(T) w=1", "speed-up", "n+1", "c = SU/(n+1)",
                      "max degree"});
  for (unsigned n = 4; n <= n_max; n += 2) {
    const Tree t = make(n);
    const std::uint64_t s = sequential_solve_work(t);
    const auto run = run_parallel_solve(t, 1);
    const double speedup = double(s) / double(run.stats.steps);
    table.row({bench::fmt(n), bench::fmt(s), bench::fmt(run.stats.steps),
               bench::fmt(speedup), bench::fmt(n + 1),
               bench::fmt(speedup / double(n + 1)),
               bench::fmt(std::uint64_t(run.stats.max_degree))});
  }
  table.print();
  (void)d;
}

}  // namespace
}  // namespace gtpar

int main() {
  using namespace gtpar;
  bench::banner("E2", "Theorem 1: width-1 Parallel SOLVE has linear speed-up c(n+1)",
                "S(T) = Sequential SOLVE leaves; P(T) = width-1 steps; c should be "
                "bounded away from 0 as n grows");

  sweep("B(2,n), worst case (skeleton = full tree)", 2, 16,
        [](unsigned n) { return make_worst_case_nor(2, n, false); });
  sweep("B(2,n), i.i.d. golden bias (sqrt(5)-1)/2", 2, 16,
        [](unsigned n) { return make_uniform_iid_nor(2, n, golden_bias(), n); });
  sweep("B(2,n), i.i.d. p = 0.3", 2, 16,
        [](unsigned n) { return make_uniform_iid_nor(2, n, 0.3, n + 100); });
  sweep("B(3,n), worst case", 3, 10,
        [](unsigned n) { return make_worst_case_nor(3, n, false); });
  sweep("B(3,n), i.i.d. p = 0.5", 3, 10,
        [](unsigned n) { return make_uniform_iid_nor(3, n, 0.5, n + 200); });
  sweep("B(4,n), worst case", 4, 8,
        [](unsigned n) { return make_worst_case_nor(4, n, false); });

  std::printf(
      "Reading: speed-up grows roughly linearly with n+1 (the c column is\n"
      "roughly flat and well above the tiny provable constant of the paper),\n"
      "confirming the Main Theorem and the Section 8 remark that the true\n"
      "constant is much better than the proved one (see E11).\n\n");
  return 0;
}
