// bench_gameplay — what game-play sessions buy over stateless per-move
// search (docs/SESSIONS.md).
//
// Two experiments:
//
//  1. Fixed strength (exact play, unlimited budget): self-play every
//     bundled game to completion twice — once through a full-strength
//     GameSession (shared TT + PV reuse + killer/history ordering +
//     aspiration windows) and once with every reuse mechanism ablated,
//     i.e. a from-scratch iterative-deepening search per move. Both play
//     perfectly; the session proves each move with fewer node expansions,
//     and the headline is moves/sec at that fixed (perfect) strength.
//
//  2. Fixed time: on a board too large to solve within the budget, play
//     both variants with the same per-move wall-clock budget and compare
//     the depth reached per move — depth at equal time is the strength
//     proxy (deeper completed iterations = stronger play).
//
// Flags:  --json PATH   write results as JSON (default BENCH_gameplay.json)
//         --check       exit non-zero if either variant misplays a solved
//                       game or the session fails to beat the from-scratch
//                       baseline on total node expansions (CI smoke gate)
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.hpp"
#include "gtpar/engine/engine.hpp"
#include "gtpar/games/chomp.hpp"
#include "gtpar/games/games.hpp"
#include "gtpar/games/mnk.hpp"
#include "gtpar/session/session.hpp"

namespace gtpar {
namespace {

using bench::fmt;
using Clock = std::chrono::steady_clock;

SessionOptions scratch_options() {
  SessionOptions o;
  o.use_tt = false;
  o.aspiration = false;
  o.ordering = false;
  o.reuse_pv = false;
  return o;
}

struct GameCase {
  const char* name;
  const TreeSource* src;
  Value theory;
};

/// One full self-played game; both sides move through the same session.
struct PlayOut {
  unsigned moves = 0;
  std::uint64_t nodes = 0;
  std::uint64_t tt_hits = 0;
  std::uint64_t wall_ns = 0;
  double mean_depth = 0;
  unsigned exact_moves = 0;
  Value result = 0;
};

PlayOut self_play(const TreeSource& src, const SessionOptions& opt,
                  std::uint64_t budget_ns) {
  // A fresh engine per run: the experiment measures what ONE session
  // carries across ITS moves, so table state must not leak between runs.
  Engine eng(Engine::Options{.workers = 4});
  GameSession s(eng, src, opt);
  PlayOut out;
  std::uint64_t depth_sum = 0;
  const auto start = Clock::now();
  while (!s.game_over()) {
    const MoveSuggestion m = s.SuggestMove(s.to_move(), budget_ns);
    s.Play(m.move);
    ++out.moves;
    out.nodes += m.stats.nodes;
    out.tt_hits += m.stats.tt_hits;
    depth_sum += m.depth;
    if (m.exact) ++out.exact_moves;
  }
  out.wall_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - start)
          .count());
  out.mean_depth = out.moves ? double(depth_sum) / double(out.moves) : 0.0;
  out.result = s.game_result();
  return out;
}

struct FixedStrengthRow {
  const char* game;
  Value theory;
  PlayOut reuse, scratch;
};

struct FixedTimeRow {
  std::uint64_t budget_ms;
  unsigned positions = 0;
  /// Positions proven to their exact game value within the budget — the
  /// strength headline (an exact move is perfect play at that position).
  unsigned reuse_solved = 0, scratch_solved = 0;
  /// Completed depth averaged over positions NEITHER variant solved:
  /// exact solves stop iterative deepening early, so depth across all
  /// positions would punish the variant that solves more of them.
  unsigned unsolved_positions = 0;
  double reuse_mean_depth = 0, scratch_mean_depth = 0;
  std::uint64_t reuse_nodes = 0, scratch_nodes = 0;
};

/// Strength at fixed time, compared at IDENTICAL positions: a session
/// plays the game under a per-move budget; before each of its moves, a
/// cold from-scratch searcher (fresh engine, every reuse mechanism off)
/// searches the SAME position with the SAME budget.
FixedTimeRow fixed_time(const TreeSource& src, std::uint64_t budget_ms) {
  FixedTimeRow row{budget_ms};
  Engine eng(Engine::Options{.workers = 4});
  GameSession s(eng, src);
  std::vector<unsigned> played;
  std::uint64_t reuse_depth = 0, scratch_depth = 0;
  while (!s.game_over()) {
    Engine cold(Engine::Options{.workers = 4});
    GameSession probe(cold, src, scratch_options());
    for (const unsigned m : played) probe.Play(m);
    const MoveSuggestion cs = probe.SuggestMove(probe.to_move(),
                                                budget_ms * 1'000'000);
    const MoveSuggestion ms = s.SuggestMove(s.to_move(), budget_ms * 1'000'000);
    ++row.positions;
    if (ms.exact) ++row.reuse_solved;
    if (cs.exact) ++row.scratch_solved;
    if (!ms.exact && !cs.exact) {
      ++row.unsolved_positions;
      reuse_depth += ms.depth;
      scratch_depth += cs.depth;
    }
    row.reuse_nodes += ms.stats.nodes;
    row.scratch_nodes += cs.stats.nodes;
    s.Play(ms.move);
    played.push_back(ms.move);
  }
  if (row.unsolved_positions) {
    row.reuse_mean_depth = double(reuse_depth) / double(row.unsolved_positions);
    row.scratch_mean_depth =
        double(scratch_depth) / double(row.unsolved_positions);
  }
  return row;
}

void write_json(const char* path, const std::vector<FixedStrengthRow>& solved,
                const std::vector<FixedTimeRow>& timed, double moves_per_sec,
                double node_reduction) {
  std::FILE* f = std::fopen(path, "w");
  if (!f) {
    std::fprintf(stderr, "bench_gameplay: cannot write %s\n", path);
    return;
  }
  std::fprintf(f, "{\n  \"benchmark\": \"gameplay_sessions\",\n");
  std::fprintf(f,
               "  \"workload\": {\"mode\": \"self-play\", \"variants\": "
               "[\"session-reuse\", \"from-scratch\"], \"workers\": 4},\n");
  std::fprintf(f, "  \"headline\": {\n");
  std::fprintf(f, "    \"moves_per_sec_at_perfect_strength\": %.1f,\n",
               moves_per_sec);
  std::fprintf(f, "    \"reuse_node_reduction_vs_from_scratch\": %.3f,\n",
               node_reduction);
  if (!timed.empty()) {
    const auto& t = timed.front();
    std::fprintf(f,
                 "    \"solved_positions_at_%llums_reuse\": \"%u/%u\",\n",
                 static_cast<unsigned long long>(t.budget_ms), t.reuse_solved,
                 t.positions);
    std::fprintf(f,
                 "    \"solved_positions_at_%llums_from_scratch\": \"%u/%u\"\n",
                 static_cast<unsigned long long>(t.budget_ms),
                 t.scratch_solved, t.positions);
  } else {
    std::fprintf(f, "    \"fixed_time\": \"skipped\"\n");
  }
  std::fprintf(f, "  },\n  \"fixed_strength\": [\n");
  for (std::size_t i = 0; i < solved.size(); ++i) {
    const auto& r = solved[i];
    std::fprintf(
        f,
        "    {\"game\": \"%s\", \"theory\": %d, \"result\": %d, \"moves\": %u, "
        "\"reuse_nodes\": %llu, \"scratch_nodes\": %llu, \"reduction\": %.3f, "
        "\"reuse_tt_hits\": %llu, \"reuse_wall_ns\": %llu, "
        "\"scratch_wall_ns\": %llu}%s\n",
        r.game, r.theory, r.reuse.result, r.reuse.moves,
        static_cast<unsigned long long>(r.reuse.nodes),
        static_cast<unsigned long long>(r.scratch.nodes),
        r.reuse.nodes ? double(r.scratch.nodes) / double(r.reuse.nodes) : 0.0,
        static_cast<unsigned long long>(r.reuse.tt_hits),
        static_cast<unsigned long long>(r.reuse.wall_ns),
        static_cast<unsigned long long>(r.scratch.wall_ns),
        i + 1 < solved.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"fixed_time\": [\n");
  for (std::size_t i = 0; i < timed.size(); ++i) {
    const auto& t = timed[i];
    std::fprintf(
        f,
        "    {\"budget_ms\": %llu, \"game\": \"mnk-5x3-k3\", "
        "\"positions\": %u, \"reuse_solved\": %u, \"scratch_solved\": %u, "
        "\"unsolved_positions\": %u, \"reuse_mean_depth\": %.2f, "
        "\"scratch_mean_depth\": %.2f, \"reuse_nodes\": %llu, "
        "\"scratch_nodes\": %llu}%s\n",
        static_cast<unsigned long long>(t.budget_ms), t.positions,
        t.reuse_solved, t.scratch_solved, t.unsolved_positions,
        t.reuse_mean_depth, t.scratch_mean_depth,
        static_cast<unsigned long long>(t.reuse_nodes),
        static_cast<unsigned long long>(t.scratch_nodes),
        i + 1 < timed.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path);
}

int run(const char* json_path, bool check) {
  bench::banner("GAMEPLAY",
                "Game-play sessions: cross-move reuse vs from-scratch search",
                "self-play to completion; fresh engine per run; 4 workers");

  const TicTacToeSource ttt;
  const MnkSource m33(3, 3, 3);
  const MnkSource line19(1, 9, 2);
  const DropSource drop43(4, 3, 3);
  const NimSource nim21(21, 3);
  const ChompSource chomp33(3, 3);
  const std::vector<GameCase> cases = {
      {"tictactoe", &ttt, 0},
      {"mnk-3x3-k3", &m33, 0},
      {"mnk-1x9-k2", &line19, 1},
      {"drop-4x3-k3", &drop43, 1},  // solved value (ab/tt_search oracle)
      {"nim-21-take3", &nim21, NimSource::theoretical_value(21, 3)},
      {"chomp-3x3", &chomp33, ChompSource::theoretical_value(3, 3)},
  };

  bool ok = true;
  std::vector<FixedStrengthRow> solved;
  std::uint64_t reuse_nodes_total = 0, scratch_nodes_total = 0;
  std::uint64_t reuse_wall_total = 0;
  unsigned reuse_moves_total = 0;
  bench::Table t1({"game", "moves", "result", "reuse nodes", "scratch nodes",
                   "reduction", "tt hits", "reuse ms", "scratch ms"});
  for (const auto& c : cases) {
    FixedStrengthRow row{c.name, c.theory, self_play(*c.src, {}, 0),
                         self_play(*c.src, scratch_options(), 0)};
    // Solved-game oracle: a misplay by either variant is a correctness bug,
    // not a performance regression.
    const bool reuse_right =
        row.reuse.result == c.theory && row.scratch.result == c.theory;
    if (!reuse_right) {
      std::fprintf(stderr, "FAIL: %s self-play result %d/%d vs theory %d\n",
                   c.name, row.reuse.result, row.scratch.result, c.theory);
      ok = false;
    }
    reuse_nodes_total += row.reuse.nodes;
    scratch_nodes_total += row.scratch.nodes;
    reuse_wall_total += row.reuse.wall_ns;
    reuse_moves_total += row.reuse.moves;
    t1.row({c.name, fmt(row.reuse.moves), fmt(double(row.reuse.result), 0),
            fmt(row.reuse.nodes), fmt(row.scratch.nodes),
            fmt(row.reuse.nodes
                    ? double(row.scratch.nodes) / double(row.reuse.nodes)
                    : 0.0),
            fmt(row.reuse.tt_hits), fmt(double(row.reuse.wall_ns) * 1e-6),
            fmt(double(row.scratch.wall_ns) * 1e-6)});
    solved.push_back(std::move(row));
  }
  std::printf("Experiment 1: fixed strength (exact play), nodes to play a "
              "full game\n\n");
  t1.print();

  const double node_reduction =
      reuse_nodes_total ? double(scratch_nodes_total) / double(reuse_nodes_total)
                        : 0.0;
  const double moves_per_sec =
      reuse_wall_total ? double(reuse_moves_total) /
                             (double(reuse_wall_total) * 1e-9)
                       : 0.0;
  std::printf("total: reuse %llu nodes vs from-scratch %llu nodes "
              "(x%.2f reduction), %.0f moves/sec at perfect strength\n\n",
              static_cast<unsigned long long>(reuse_nodes_total),
              static_cast<unsigned long long>(scratch_nodes_total),
              node_reduction, moves_per_sec);
  if (check && node_reduction <= 1.0) {
    std::fprintf(stderr,
                 "FAIL: session reuse did not reduce nodes (x%.3f)\n",
                 node_reduction);
    ok = false;
  }

  // Experiment 2: equal per-move budgets on a board the budget cannot
  // solve; compare completed depth. 5x3/k=3 is the largest bundled mnk
  // board (15 squares) — deep enough that small budgets truncate search.
  std::printf("Experiment 2: fixed time — completed depth at IDENTICAL "
              "positions (mnk 5x3, k=3)\n\n");
  const MnkSource big(5, 3, 3);
  std::vector<FixedTimeRow> timed;
  bench::Table t2({"budget ms", "positions", "reuse solved", "scratch solved",
                   "unsolved", "reuse depth", "scratch depth", "reuse nodes",
                   "scratch nodes"});
  for (const std::uint64_t ms : {2ull, 10ull}) {
    FixedTimeRow row = fixed_time(big, ms);
    t2.row({fmt(row.budget_ms), fmt(row.positions), fmt(row.reuse_solved),
            fmt(row.scratch_solved), fmt(row.unsolved_positions),
            fmt(row.reuse_mean_depth), fmt(row.scratch_mean_depth),
            fmt(row.reuse_nodes), fmt(row.scratch_nodes)});
    timed.push_back(row);
  }
  t2.print();

  write_json(json_path, solved, timed, moves_per_sec, node_reduction);
  if (check) {
    std::printf("check: %s\n", ok ? "PASS" : "FAIL");
    return ok ? 0 : 1;
  }
  return 0;
}

}  // namespace
}  // namespace gtpar

int main(int argc, char** argv) {
  const char* json_path = "BENCH_gameplay.json";
  bool check = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--check") == 0) check = true;
    else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc)
      json_path = argv[++i];
    else {
      std::fprintf(stderr, "usage: %s [--check] [--json PATH]\n", argv[0]);
      return 2;
    }
  }
  return gtpar::run(json_path, check);
}
