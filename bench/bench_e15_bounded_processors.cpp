// E15 — fixed processor budgets in the leaf-evaluation model: width-w
// Parallel SOLVE/alpha-beta with only p processors (leftmost-priority
// scheduling of the eligible set). Complements E9's zone multiplexing:
// Brent's principle predicts steps ~ P_w(T) + W_w(T)/p, so speed-up scales
// linearly in p until it saturates at the width-w parallelism.
#include "bench/bench_util.hpp"

#include "gtpar/ab/minimax_simulator.hpp"
#include "gtpar/solve/nor_simulator.hpp"
#include "gtpar/solve/sequential_solve.hpp"
#include "gtpar/tree/generators.hpp"

int main() {
  using namespace gtpar;
  bench::banner("E15", "Fixed processor budgets: Brent-style scaling at width w",
                "steps of width-w runs truncated to the leftmost p eligible leaves");

  {
    const unsigned n = 14;
    const Tree t = make_worst_case_nor(2, n, false);
    const std::uint64_t s = sequential_solve_work(t);
    std::printf("-- B(2,%u) worst case, S(T) = %llu\n", n,
                static_cast<unsigned long long>(s));
    bench::Table table({"width", "p", "steps", "speed-up", "Brent prediction"});
    for (unsigned w : {1u, 2u, 3u}) {
      const auto full = run_parallel_solve(t, w);
      for (std::size_t p : {1u, 2u, 4u, 8u, 16u, 64u, 1024u}) {
        const auto run = run_parallel_solve_bounded(t, w, p);
        const double brent =
            double(full.stats.steps) + double(full.stats.work) / double(p);
        table.row({bench::fmt(w), bench::fmt(std::uint64_t(p)),
                   bench::fmt(run.stats.steps),
                   bench::fmt(double(s) / double(run.stats.steps)),
                   bench::fmt(brent, 0)});
      }
    }
    table.print();
  }

  {
    const unsigned n = 12;
    const Tree t = make_worst_case_minimax(2, n);
    const auto seq = run_sequential_ab(t);
    std::printf("-- M(2,%u) worst-case ordering, S~(T) = %llu\n", n,
                static_cast<unsigned long long>(seq.stats.work));
    bench::Table table({"width", "p", "steps", "speed-up"});
    for (unsigned w : {1u, 2u}) {
      for (std::size_t p : {1u, 2u, 4u, 8u, 16u, 64u}) {
        const auto run = run_parallel_ab_bounded(t, w, p);
        table.row({bench::fmt(w), bench::fmt(std::uint64_t(p)),
                   bench::fmt(run.stats.steps),
                   bench::fmt(double(seq.stats.steps) / double(run.stats.steps))});
      }
    }
    table.print();
  }

  std::printf(
      "Reading: for p below the width-w parallelism the speed-up tracks p\n"
      "(the work term dominates, as Brent predicts); past it, the curve\n"
      "flattens at the width-w speed-up of E2/E8. Small budgets lose nothing:\n"
      "scheduling the leftmost p eligible leaves is work-efficient.\n\n");
  return 0;
}
