# Experiment harness: one binary per experiment (DESIGN.md section 5).
# Included from the top-level CMakeLists (not add_subdirectory) so that
# ${CMAKE_BINARY_DIR}/bench contains only the executables and
# `for b in build/bench/*; do $b; done` runs the full report cleanly.
function(gtpar_bench name)
  add_executable(${name} ${CMAKE_CURRENT_LIST_DIR}/${name}.cpp)
  target_include_directories(${name} PRIVATE ${CMAKE_CURRENT_LIST_DIR}/..)
  target_link_libraries(${name} PRIVATE
    gtpar_tree gtpar_sim gtpar_solve gtpar_ab gtpar_expand gtpar_rand
    gtpar_mp gtpar_threads gtpar_analysis gtpar_games Threads::Threads)
  set_target_properties(${name} PROPERTIES
    RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
endfunction()

gtpar_bench(bench_e1_team_solve)
gtpar_bench(bench_e2_parallel_solve)
gtpar_bench(bench_e3_total_work)
gtpar_bench(bench_e4_degree_histogram)
gtpar_bench(bench_e5_parallel_ab)
gtpar_bench(bench_e6_node_expansion)
gtpar_bench(bench_e7_randomized)
gtpar_bench(bench_e8_width_sweep)
gtpar_bench(bench_e9_message_passing)
gtpar_bench(bench_e10_threads)
gtpar_bench(bench_e11_constant)
gtpar_bench(bench_e12_nonuniform)
target_link_libraries(bench_e10_threads PRIVATE benchmark::benchmark)
gtpar_bench(bench_e13_sequential_baselines)
gtpar_bench(bench_e14_growth_rates)
gtpar_bench(bench_e15_bounded_processors)
gtpar_bench(bench_e16_wide_vs_tall)
gtpar_bench(bench_e17_promotion_ablation)
gtpar_bench(bench_throughput)
target_link_libraries(bench_throughput PRIVATE benchmark::benchmark)
gtpar_bench(bench_e18_parallel_sss)
gtpar_bench(bench_gameplay)
target_link_libraries(bench_gameplay PRIVATE gtpar_engine)
