// E7 — Theorem 5 / Theorem 6 and the Althoefer connection: the randomized
// algorithms (random child permutation, Section 6) keep the linear
// expected speed-up: E[S*_R(T)] / E[P*_R(T)] >= c(n+1). The i.i.d. model
// with the golden-ratio bias p = (sqrt(5)-1)/2 is the setting of
// Althoefer's probabilistic analysis, which our deterministic theorems
// subsume.
#include "bench/bench_util.hpp"

#include "gtpar/expand/nor_expansion.hpp"
#include "gtpar/rand/randomized.hpp"
#include "gtpar/tree/generators.hpp"

int main() {
  using namespace gtpar;
  bench::banner("E7", "Theorem 5: randomized R-Parallel SOLVE keeps linear expected "
                      "speed-up",
                "16 trials per row; R-algorithms = N-algorithms on a randomly "
                "permuted tree");

  const unsigned kTrials = 16;

  std::printf("-- implicit B(2,n), i.i.d. at the golden bias (Althoefer's model)\n");
  bench::Table table({"n", "E[S*_R]", "E[P*_R] w=1", "expected speed-up", "n+1",
                      "c = SU/(n+1)"});
  for (unsigned n = 6; n <= 14; n += 2) {
    const auto src = make_iid_nor_source(2, n, golden_bias(), n);
    const auto seq = estimate_r_solve(src, 0, kTrials, 1000);
    const auto par = estimate_r_solve(src, 1, kTrials, 1000);
    const double speedup = seq.mean_steps / par.mean_steps;
    table.row({bench::fmt(n), bench::fmt(seq.mean_steps, 1),
               bench::fmt(par.mean_steps, 1), bench::fmt(speedup), bench::fmt(n + 1),
               bench::fmt(speedup / double(n + 1))});
  }
  table.print();

  std::printf("-- randomization vs determinism on the adversarial instance\n");
  bench::Table adv({"n", "det S* (all nodes)", "E[S*_R]", "saving"});
  for (unsigned n = 8; n <= 14; n += 2) {
    const WorstCaseNorSource src(2, n, false);
    const auto det = run_n_sequential_solve(src);
    const auto est = estimate_r_solve(src, 0, kTrials, 7);
    adv.row({bench::fmt(n), bench::fmt(det.stats.work), bench::fmt(est.mean_work, 1),
             bench::fmt(double(det.stats.work) / est.mean_work)});
  }
  adv.print();

  std::printf("-- R-Parallel alpha-beta (Theorem 6), M(2,n) i.i.d. leaves\n");
  bench::Table ab({"n", "E[S*~_R]", "E[P*~_R] w=1", "expected speed-up"});
  for (unsigned n = 6; n <= 12; n += 2) {
    const auto src = make_iid_minimax_source(2, n, 0, 1 << 20, n);
    const auto seq = estimate_r_ab(src, 0, kTrials, 55);
    const auto par = estimate_r_ab(src, 1, kTrials, 55);
    ab.row({bench::fmt(n), bench::fmt(seq.mean_steps, 1), bench::fmt(par.mean_steps, 1),
            bench::fmt(seq.mean_steps / par.mean_steps)});
  }
  ab.print();

  std::printf(
      "Reading: expected speed-ups match the deterministic ones (Theorems 5-6\n"
      "follow from Theorems 1-4 by averaging), and randomization additionally\n"
      "beats the deterministic left-to-right scan on adversarial instances.\n\n");
  return 0;
}
