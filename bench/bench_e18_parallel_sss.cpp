// E18 — "Parallel alpha-beta versus parallel SSS*": the head-to-head of
// reference [11] (Vornberger, IFIP 1987), reconstructed inside our cost
// model. Parallel SSS* applies p Gamma operators per basic step (the p
// processors each grab one of the p best OPEN states); width-w Parallel
// alpha-beta evaluates its eligible leaf set per step. We compare the
// speed-up each method extracts as its parallelism grows, on well- and
// badly-ordered trees.
#include "bench/bench_util.hpp"

#include "gtpar/ab/minimax_simulator.hpp"
#include "gtpar/ab/sss.hpp"
#include "gtpar/tree/generators.hpp"

namespace gtpar {
namespace {

void compare(const char* label, const Tree& t) {
  const auto seq_ab = run_sequential_ab(t);
  const auto seq_ss = sss_star(t);
  std::printf("-- %s: sequential alpha-beta %llu leaves, sequential SSS* %llu "
              "leaves (%llu gamma ops)\n",
              label, static_cast<unsigned long long>(seq_ab.stats.work),
              static_cast<unsigned long long>(seq_ss.distinct_leaves),
              static_cast<unsigned long long>(seq_ss.gamma_steps));

  bench::Table table({"method", "parallelism", "steps", "speed-up vs own seq",
                      "leaves/work"});
  for (unsigned w : {1u, 2u, 3u}) {
    const auto run = run_parallel_ab(t, w);
    table.row({"parallel alpha-beta", "width " + std::to_string(w),
               bench::fmt(run.stats.steps),
               bench::fmt(double(seq_ab.stats.steps) / double(run.stats.steps)),
               bench::fmt(run.stats.work)});
  }
  for (std::size_t p : {4u, 16u, 64u}) {
    const auto run = parallel_sss(t, p);
    table.row({"parallel SSS*", "p = " + std::to_string(p), bench::fmt(run.steps),
               bench::fmt(double(seq_ss.gamma_steps) / double(run.steps)),
               bench::fmt(run.distinct_leaves)});
  }
  table.print();
}

}  // namespace
}  // namespace gtpar

int main() {
  using namespace gtpar;
  bench::banner("E18", "Parallel alpha-beta vs parallel SSS* (reference [11])",
                "SSS* steps apply p Gamma ops each; alpha-beta steps evaluate the "
                "width-w eligible leaves");

  compare("M(2,12), worst-case ordering", make_worst_case_minimax(2, 12));
  compare("M(2,12), i.i.d. leaves", make_uniform_iid_minimax(2, 12, 0, 1 << 20, 5));
  compare("M(2,12), ordering quality 0.75",
          make_ordered_iid_minimax(2, 12, 0, 1 << 20, 7, 0.75));
  compare("M(4,6), i.i.d. leaves", make_uniform_iid_minimax(4, 6, 0, 1 << 20, 9));

  std::printf(
      "Reading: parallel SSS* parallelises its own bookkeeping almost\n"
      "perfectly (Gamma ops per step ~ p) and needs fewer leaves on badly\n"
      "ordered trees, but its sequential baseline already carries a large\n"
      "Gamma/list overhead; parallel alpha-beta reaches comparable or better\n"
      "step counts with a handful of eligible leaves per step and no global\n"
      "priority structure -- Vornberger's conclusion, and the reason the\n"
      "paper bets on alpha-beta.\n\n");
  return 0;
}
