// E17 — ablation of the promotion rule (P-SOLVE's case two) in the real
// -thread parallel alpha-beta. DESIGN.md calls promotion out as the load-
// bearing design choice of the Section 7 implementation: without it, the
// spine join-waits behind each top-level *sequential* scout, which caps
// the wall-clock speed-up near 2x regardless of thread count.
#include "bench/bench_util.hpp"

#include "gtpar/threads/mt_ab.hpp"
#include "gtpar/tree/generators.hpp"

int main() {
  using namespace gtpar;
  bench::banner("E17", "Ablation: promotion (abort + parallel re-search) vs join-wait",
                "mt_parallel_ab on M(2,10) worst ordering; sleeping 100us leaves; "
                "3 runs per cell, best time");

  const Tree t = make_worst_case_minimax(2, 10);
  const std::uint64_t kLeafNs = 100'000;

  const auto seq = mt_sequential_ab(t, kLeafNs, LeafCostModel::kSleep);
  std::printf("sequential baseline: %.1f ms (%llu leaves)\n\n",
              double(seq.wall_ns) / 1e6,
              static_cast<unsigned long long>(seq.leaf_evaluations));

  bench::Table table({"threads", "promotion ON (ms)", "speed-up", "promotion OFF (ms)",
                      "speed-up"});
  for (unsigned threads : {1u, 2u, 4u, 8u}) {
    double best_on = 1e30, best_off = 1e30;
    for (int rep = 0; rep < 3; ++rep) {
      MtAbOptions opt;
      opt.threads = threads;
      opt.leaf_cost_ns = kLeafNs;
      opt.cost_model = LeafCostModel::kSleep;
      opt.promotion = true;
      best_on = std::min(best_on, double(mt_parallel_ab(t, opt).wall_ns) / 1e6);
      opt.promotion = false;
      best_off = std::min(best_off, double(mt_parallel_ab(t, opt).wall_ns) / 1e6);
    }
    table.row({bench::fmt(threads), bench::fmt(best_on, 1),
               bench::fmt(double(seq.wall_ns) / 1e6 / best_on),
               bench::fmt(best_off, 1),
               bench::fmt(double(seq.wall_ns) / 1e6 / best_off)});
  }
  table.print();

  std::printf(
      "Reading: with promotion the speed-up keeps climbing with threads;\n"
      "without it the top-level sequential scouts serialise the search and\n"
      "the curve flattens early — the measured justification for the\n"
      "paper's case-two machinery.\n\n");
  return 0;
}
