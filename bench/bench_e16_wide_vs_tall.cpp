// E16 — the Section 8 caveat, quantified: "Our results are asymptotic in
// the height of the input tree... This should be contrasted with the
// 'wide-and-shallow' game trees encountered in chess programs." This
// experiment holds the leaf count roughly fixed and trades height against
// branching factor, on both i.i.d. and *correlated* leaf values (edge-sum
// evaluations, the realistic chess-like structure), and reports how the
// width-1 speed-up degrades as trees get wider and shallower.
#include "bench/bench_util.hpp"

#include "gtpar/ab/minimax_simulator.hpp"
#include "gtpar/tree/generators.hpp"

int main() {
  using namespace gtpar;
  bench::banner("E16", "Wide-and-shallow vs tall-and-thin at ~fixed leaf count",
                "width-1 Parallel alpha-beta; ~4k leaves per row; 6 seeds");

  struct Shape {
    unsigned d, n;
  };
  // d^n ~ 4096 in every row.
  const Shape shapes[] = {{2, 12}, {4, 6}, {8, 4}, {16, 3}, {64, 2}};

  for (const bool correlated : {false, true}) {
    std::printf("-- %s leaf values\n",
                correlated ? "correlated (edge-sum, chess-like)" : "i.i.d. uniform");
    bench::Table table({"d", "n", "leaves", "mean S~", "mean P~ w=1", "speed-up",
                        "n+1"});
    for (const Shape s : shapes) {
      std::uint64_t total_s = 0, total_p = 0;
      const unsigned kSeeds = 6;
      for (std::uint64_t seed = 0; seed < kSeeds; ++seed) {
        const Tree t = correlated
                           ? make_correlated_minimax(s.d, s.n, 100, seed * 3 + 1)
                           : make_uniform_iid_minimax(s.d, s.n, 0, 1 << 20, seed * 3 + 1);
        total_s += run_sequential_ab(t).stats.steps;
        total_p += run_parallel_ab(t, 1).stats.steps;
      }
      table.row({bench::fmt(s.d), bench::fmt(s.n),
                 bench::fmt(uniform_leaf_count(s.d, s.n)),
                 bench::fmt(total_s / kSeeds), bench::fmt(total_p / kSeeds),
                 bench::fmt(double(total_s) / double(total_p)), bench::fmt(s.n + 1)});
    }
    table.print();
  }

  std::printf(
      "Reading: at fixed leaf count the width-1 speed-up shrinks with the\n"
      "height (the parallelism budget is ~n+1), exactly the weakness the\n"
      "paper's conclusion concedes for chess-like shapes; raising the width\n"
      "parameter (E8) is the paper's prescribed remedy. Correlated values\n"
      "cut S~ sharply (natural move ordering) without changing the shape of\n"
      "the height dependence.\n\n");
  return 0;
}
