// bench/bench_util.hpp
//
// Shared table-printing helpers for the experiment harness. Each bench
// binary regenerates the evidence for one claim of the paper (experiment
// ids E1..E12; see DESIGN.md section 5) and prints self-describing tables,
// so `for b in build/bench/*; do $b; done` produces the full experiment
// report that EXPERIMENTS.md summarizes.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

namespace gtpar::bench {

/// Fixed-width table printer. Set the environment variable
/// GTPAR_TABLE_FORMAT=csv to emit machine-readable CSV instead of the
/// human-readable layout (useful for piping bench output into plots).
class Table {
 public:
  explicit Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

  Table& row(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
    return *this;
  }

  void print() const {
    const char* fmt = std::getenv("GTPAR_TABLE_FORMAT");
    if (fmt && std::strcmp(fmt, "csv") == 0) {
      print_csv();
      return;
    }
    print_pretty();
  }

  void print_csv() const {
    auto emit = [](const std::vector<std::string>& cells) {
      for (std::size_t c = 0; c < cells.size(); ++c)
        std::printf("%s%s", c ? "," : "", cells[c].c_str());
      std::printf("\n");
    };
    emit(headers_);
    for (const auto& r : rows_) emit(r);
    std::printf("\n");
  }

  void print_pretty() const {
    std::vector<std::size_t> width(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
    for (const auto& r : rows_)
      for (std::size_t c = 0; c < r.size() && c < width.size(); ++c)
        if (r[c].size() > width[c]) width[c] = r[c].size();

    auto print_row = [&](const std::vector<std::string>& cells) {
      std::printf("|");
      for (std::size_t c = 0; c < headers_.size(); ++c) {
        const std::string& s = c < cells.size() ? cells[c] : std::string();
        std::printf(" %-*s |", static_cast<int>(width[c]), s.c_str());
      }
      std::printf("\n");
    };
    print_row(headers_);
    std::printf("|");
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      for (std::size_t i = 0; i < width[c] + 2; ++i) std::printf("-");
      std::printf("|");
    }
    std::printf("\n");
    for (const auto& r : rows_) print_row(r);
    std::printf("\n");
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string fmt(double v, int prec = 2) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", prec, v);
  return buf;
}

inline std::string fmt(std::uint64_t v) { return std::to_string(v); }
inline std::string fmt(unsigned v) { return std::to_string(v); }

/// Nearest-rank percentile: the smallest sample element x such that at
/// least ceil(q * n) of the sample is <= x. q is clamped to [0, 1] — q = 0
/// returns the minimum, q = 1 the maximum — and an empty sample returns 0.
/// Sorts `v` in place.
inline double percentile(std::vector<double>& v, double q) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  if (q <= 0.0) return v.front();
  if (q >= 1.0) return v.back();
  // 0 < q < 1 makes 1 <= ceil(q*n) <= n; the clamps guard fp rounding only.
  const auto rank =
      static_cast<std::size_t>(std::ceil(q * static_cast<double>(v.size())));
  return v[std::min(std::max<std::size_t>(rank, 1), v.size()) - 1];
}

/// Experiment banner: id, claim, setup.
inline void banner(const char* id, const char* claim, const char* setup) {
  std::printf("================================================================\n");
  std::printf("%s  %s\n", id, claim);
  std::printf("    %s\n", setup);
  std::printf("================================================================\n");
}

}  // namespace gtpar::bench
