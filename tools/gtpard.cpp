// tools/gtpard.cpp
//
// gtpard — the game-tree search daemon. Puts the batched evaluation
// engine behind a socket: length-prefixed binary frames (net/wire.hpp)
// over TCP or a Unix-domain socket, an accept loop feeding
// Engine::submit, structured error frames for shed/overload/stall, and
// graceful drain on SIGTERM/SIGINT (stop accepting, finish or cancel
// in-flight requests, flush final frames, print stats).
//
// Usage:
//   gtpard --tcp PORT | --unix PATH   endpoint (exactly one; PORT 0 =
//                                     ephemeral, printed on stdout)
//          [--workers N]              engine worker threads (default 4)
//          [--max-in-flight N]        admission bound (default 0 = off)
//          [--shed reject|caller]     shed policy at the bound
//                                     (default reject; the blocking
//                                     policy is not offered — streamed
//                                     stages submit from completion
//                                     callbacks, which must not block)
//          [--stall-ms N]             watchdog: fail jobs running > N ms
//          [--tt-entries N]           shared transposition table size
//          [--stream-stages N]        stages for stream=true requests
//          [--allow-fault-injection]  accept WireRequest fault plans
//                                     (test/chaos only)
//          [--drain-cancel]           cancel in-flight on drain instead
//                                     of waiting them out
//          [--write-deadline-ms N]    disconnect a peer whose reads stall
//                                     a send this long (default 5000;
//                                     0 = never)
//          [--idle-timeout-ms N]      reap connections idle this long
//                                     (default 0 = never)
//          [--max-per-conn N]         per-connection in-flight cap
//                                     (default 0 = off)
//
// The process prints "gtpard listening ..." once ready (gtpload and the
// CI smoke gate wait for that line) and exits 0 after a clean drain.
// SIGUSR1 dumps server/engine stats to stdout without disturbing the
// service, so operators can inspect a live daemon.
#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <unistd.h>

#include "gtpar/net/server.hpp"

namespace {

// Signal handler -> self-pipe, so main can block in read() and act on
// the main thread (the handler itself stays async-signal-safe). The byte
// tags the signal: 1 = drain (SIGTERM/SIGINT), 2 = stats dump (SIGUSR1).
int g_wake_pipe[2] = {-1, -1};

void on_signal(int sig) {
  const char b = sig == SIGUSR1 ? 2 : 1;
  [[maybe_unused]] const ssize_t n = ::write(g_wake_pipe[1], &b, 1);
}

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s (--tcp PORT | --unix PATH) [--workers N] "
               "[--max-in-flight N] [--shed reject|caller] [--stall-ms N] "
               "[--tt-entries N] [--stream-stages N] "
               "[--allow-fault-injection] [--drain-cancel] "
               "[--write-deadline-ms N] [--idle-timeout-ms N] "
               "[--max-per-conn N]\n",
               argv0);
  return 2;
}

void print_stats(const gtpar::net::ServiceServer& server) {
  const auto s = server.stats();
  const auto e = server.engine_stats();
  std::printf(
      "gtpard stats: connections=%llu requests=%llu results=%llu "
      "partials=%llu errors=%llu shed=%llu draining=%llu bad_frames=%llu "
      "cancels=%llu\n",
      static_cast<unsigned long long>(s.connections_accepted),
      static_cast<unsigned long long>(s.requests_received),
      static_cast<unsigned long long>(s.results_sent),
      static_cast<unsigned long long>(s.partials_sent),
      static_cast<unsigned long long>(s.errors_sent),
      static_cast<unsigned long long>(s.requests_shed),
      static_cast<unsigned long long>(s.requests_draining),
      static_cast<unsigned long long>(s.bad_frames),
      static_cast<unsigned long long>(s.cancels_received));
  std::printf(
      "net stats: accepts_dropped=%llu partials_dropped=%llu "
      "slow_peer_disconnects=%llu idle_reaped=%llu conn_capped=%llu "
      "dedupe_hits=%llu dedupe_replays=%llu\n",
      static_cast<unsigned long long>(s.accepts_dropped),
      static_cast<unsigned long long>(s.partials_dropped),
      static_cast<unsigned long long>(s.slow_peer_disconnects),
      static_cast<unsigned long long>(s.idle_reaped),
      static_cast<unsigned long long>(s.conn_capped),
      static_cast<unsigned long long>(s.dedupe_hits),
      static_cast<unsigned long long>(s.dedupe_replays));
  std::printf(
      "engine stats: submitted=%llu completed=%llu incomplete=%llu "
      "rejected=%llu watchdog=%llu retries=%llu faults=%llu "
      "avg_dispatch_us=%.1f\n",
      static_cast<unsigned long long>(e.submitted),
      static_cast<unsigned long long>(e.completed),
      static_cast<unsigned long long>(e.incomplete),
      static_cast<unsigned long long>(e.rejected),
      static_cast<unsigned long long>(e.watchdog_failed),
      static_cast<unsigned long long>(e.total_retries),
      static_cast<unsigned long long>(e.total_faults),
      e.completed ? static_cast<double>(e.total_dispatch_ns) / 1e3 /
                        static_cast<double>(e.completed)
                  : 0.0);
}

}  // namespace

int main(int argc, char** argv) {
  gtpar::net::ServiceOptions opt;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", a);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(a, "--tcp") == 0) {
      opt.tcp_port = std::atoi(next());
    } else if (std::strcmp(a, "--unix") == 0) {
      opt.unix_path = next();
    } else if (std::strcmp(a, "--workers") == 0) {
      opt.engine.workers = static_cast<unsigned>(std::atoi(next()));
    } else if (std::strcmp(a, "--max-in-flight") == 0) {
      opt.engine.max_in_flight =
          static_cast<std::uint64_t>(std::atoll(next()));
    } else if (std::strcmp(a, "--shed") == 0) {
      const char* v = next();
      if (std::strcmp(v, "reject") == 0)
        opt.engine.shed = gtpar::ShedPolicy::kRejectNew;
      else if (std::strcmp(v, "caller") == 0)
        opt.engine.shed = gtpar::ShedPolicy::kCallerRuns;
      else
        return usage(argv[0]);
    } else if (std::strcmp(a, "--stall-ms") == 0) {
      opt.engine.stall_timeout_ns =
          static_cast<std::uint64_t>(std::atoll(next())) * 1000000ull;
    } else if (std::strcmp(a, "--tt-entries") == 0) {
      opt.engine.tt_entries = static_cast<std::size_t>(std::atoll(next()));
    } else if (std::strcmp(a, "--stream-stages") == 0) {
      opt.stream_stages = static_cast<unsigned>(std::atoi(next()));
    } else if (std::strcmp(a, "--allow-fault-injection") == 0) {
      opt.allow_fault_injection = true;
    } else if (std::strcmp(a, "--drain-cancel") == 0) {
      opt.cancel_on_drain = true;
    } else if (std::strcmp(a, "--write-deadline-ms") == 0) {
      opt.write_deadline_ns =
          static_cast<std::uint64_t>(std::atoll(next())) * 1000000ull;
    } else if (std::strcmp(a, "--idle-timeout-ms") == 0) {
      opt.idle_timeout_ns =
          static_cast<std::uint64_t>(std::atoll(next())) * 1000000ull;
    } else if (std::strcmp(a, "--max-per-conn") == 0) {
      opt.max_in_flight_per_conn = static_cast<unsigned>(std::atoi(next()));
    } else {
      return usage(argv[0]);
    }
  }
  if (opt.unix_path.empty() == (opt.tcp_port < 0)) return usage(argv[0]);

  if (::pipe(g_wake_pipe) != 0) {
    std::perror("pipe");
    return 1;
  }
  std::signal(SIGTERM, on_signal);
  std::signal(SIGINT, on_signal);
  std::signal(SIGUSR1, on_signal);
  std::signal(SIGPIPE, SIG_IGN);

  try {
    gtpar::net::ServiceServer server(opt);
    server.start();
    if (!server.unix_path().empty())
      std::printf("gtpard listening on unix:%s (workers=%u)\n",
                  server.unix_path().c_str(), opt.engine.workers);
    else
      std::printf("gtpard listening on tcp:%s:%u (workers=%u)\n",
                  opt.tcp_host.c_str(), server.port(), opt.engine.workers);
    std::fflush(stdout);

    // Park until SIGTERM/SIGINT; SIGUSR1 dumps live stats and parks
    // again (the shutdown stats-dump path, reused mid-flight).
    for (;;) {
      char b = 1;
      const ssize_t n = ::read(g_wake_pipe[0], &b, 1);
      if (n < 0 && errno == EINTR) continue;
      if (n == 1 && b == 2) {
        print_stats(server);
        std::fflush(stdout);
        continue;
      }
      break;
    }
    std::printf("gtpard: draining (%s in-flight requests)...\n",
                opt.cancel_on_drain ? "cancelling" : "finishing");
    std::fflush(stdout);
    server.drain();
    print_stats(server);
    std::printf("gtpard: drained, bye\n");
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "gtpard: fatal: %s\n", e.what());
    return 1;
  }
}
