// tools/fuzz_search.cpp
//
// Seeded property fuzzer for the differential oracle: sweep generated tree
// shapes (check/fuzz.hpp) through every registered search algorithm
// (check/oracle.hpp), shrink any failure to a minimal counterexample
// (check/shrink.hpp), and dump it in the serialization format so it can be
// replayed and checked into tests/corpus/.
//
// Usage:
//   fuzz_search [--trees N] [--seed S] [--corpus DIR] [--dump DIR]
//               [--nor-only | --minimax-only] [--faults] [--force-scalar]
//               [--quiet]
//
//   --trees N    number of generated trees per semantics (default 500)
//   --seed S     first seed of the sweep (default 1); tree i uses seed S+i
//   --corpus DIR replay every *.tree file in DIR before sweeping
//   --dump DIR   where counterexamples are written (default "fuzz-artifacts")
//   --faults     chaos mode: additionally run every generated tree through
//                the fault-injection harness (check/faults.hpp) under a
//                seeded transient+permanent FaultPlan and verify the
//                resilience contract (retried-exact or consistent anytime
//                bounds, no escaped fault exceptions)
//   --force-scalar  pin the batch reductions (solve/batch_kernels.hpp) to
//                the portable scalar backend, so the flat-solve-batch /
//                flat-ab-batch registry entries sweep the non-vector
//                dispatch path (equivalent to GTPAR_FORCE_SCALAR=1; the
//                default run exercises whichever backend the CPU supports)
//   --quiet      suppress per-chunk progress lines
//
// Exit status: 0 if every corpus case and every generated tree passed the
// oracle (and, with --faults, the chaos harness), 1 otherwise
// (counterexamples are on disk by then), 2 on usage or I/O errors.
#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <string>

#include "gtpar/check/faults.hpp"
#include "gtpar/check/fuzz.hpp"
#include "gtpar/check/oracle.hpp"
#include "gtpar/check/shrink.hpp"
#include "gtpar/solve/batch_kernels.hpp"
#include "gtpar/tree/serialization.hpp"

namespace {

using namespace gtpar;
using namespace gtpar::check;

struct Options {
  std::uint64_t trees = 500;
  std::uint64_t seed = 1;
  std::string corpus;
  std::string dump = "fuzz-artifacts";
  bool nor = true;
  bool minimax = true;
  bool faults = false;
  bool force_scalar = false;
  bool quiet = false;
};

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--trees N] [--seed S] [--corpus DIR] [--dump DIR]\n"
               "          [--nor-only | --minimax-only] [--faults]\n"
               "          [--force-scalar] [--quiet]\n",
               argv0);
}

/// Parse a full decimal token; rejects partial parses like "12x" or "abc".
bool parse_u64(const char* s, std::uint64_t& out) {
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(s, &end, 10);
  if (end == s || *end != '\0' || errno == ERANGE) return false;
  out = v;
  return true;
}

bool parse_args(int argc, char** argv, Options& opt) {
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
    if (a == "--trees") {
      const char* v = next();
      if (!v || !parse_u64(v, opt.trees)) return false;
    } else if (a == "--seed") {
      const char* v = next();
      if (!v || !parse_u64(v, opt.seed)) return false;
    } else if (a == "--corpus") {
      const char* v = next();
      if (!v) return false;
      opt.corpus = v;
    } else if (a == "--dump") {
      const char* v = next();
      if (!v) return false;
      opt.dump = v;
    } else if (a == "--nor-only") {
      opt.minimax = false;
    } else if (a == "--minimax-only") {
      opt.nor = false;
    } else if (a == "--faults") {
      opt.faults = true;
    } else if (a == "--force-scalar") {
      opt.force_scalar = true;
    } else if (a == "--quiet") {
      opt.quiet = true;
    } else {
      return false;
    }
  }
  return opt.nor || opt.minimax;
}

/// Shrink a failing tree and write both the original and the minimal form.
void report_failure(const Options& opt, const Tree& tree, bool minimax,
                    const std::string& origin, const OracleReport& report) {
  std::fprintf(stderr, "FAIL %s (%s semantics)\n%s", origin.c_str(),
               minimax ? "minimax" : "nor", report.summary().c_str());
  const auto fails = [&](const Tree& candidate) {
    return !check_tree(candidate, minimax).ok();
  };
  const auto shrunk =
      shrink_tree(tree, fails, minimax ? Semantics::kMinimax : Semantics::kNor);
  const std::string prefix = (minimax ? std::string("mm_") : std::string("nor_")) + origin;
  try {
    const auto orig_path = dump_corpus_tree(opt.dump, prefix + "_orig.tree", tree);
    const auto min_path = dump_corpus_tree(opt.dump, prefix + ".tree", shrunk.tree);
    std::fprintf(stderr, "  original (%zu nodes) -> %s\n", tree.size(),
                 orig_path.c_str());
    std::fprintf(stderr, "  shrunk   (%zu nodes, %u reductions) -> %s\n",
                 shrunk.tree.size(), shrunk.rounds, min_path.c_str());
    std::fprintf(stderr, "  minimal counterexample: %s\n",
                 to_string(shrunk.tree).c_str());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "  (failed to dump counterexample: %s)\n", e.what());
  }
}

int run(const Options& opt) {
  std::uint64_t failures = 0, cases = 0;

  if (!opt.corpus.empty()) {
    const auto corpus = load_corpus(opt.corpus);
    for (const auto& c : corpus) {
      if ((c.minimax && !opt.minimax) || (!c.minimax && !opt.nor)) continue;
      ++cases;
      const auto report = check_tree(c.tree, c.minimax);
      if (!report.ok()) {
        ++failures;
        report_failure(opt, c.tree, c.minimax, "corpus_" + c.name, report);
      }
    }
    if (!opt.quiet)
      std::printf("corpus: %llu cases replayed, %llu failing\n",
                  static_cast<unsigned long long>(cases),
                  static_cast<unsigned long long>(failures));
  }

  for (const bool minimax : {false, true}) {
    if ((minimax && !opt.minimax) || (!minimax && !opt.nor)) continue;
    for (std::uint64_t i = 0; i < opt.trees; ++i) {
      const std::uint64_t seed = opt.seed + i;
      std::string family;
      const Tree t = make_fuzz_tree(seed, minimax, &family);
      ++cases;
      OracleOptions oopt;
      oopt.seed = seed;
      const auto report = check_tree(t, minimax, oopt);
      if (!report.ok()) {
        ++failures;
        report_failure(opt, t, minimax,
                       "seed_" + std::to_string(seed) + "_" + family.substr(0, family.find(' ')),
                       report);
      }
      if (opt.faults) {
        // Chaos sweep on the same tree: seeded transient faults a
        // 4-attempt retry budget must clear, plus a sprinkling of
        // permanent faults that must degrade to consistent anytime
        // bounds — never escape, never lie.
        FaultPlan plan;
        plan.seed = seed;
        plan.transient_rate = 0.25;
        plan.flaky_attempts = 2;
        plan.permanent_rate = 0.05;
        const auto chaos = check_tree_under_faults(t, minimax, plan);
        if (!chaos.ok()) {
          ++failures;
          std::fprintf(stderr, "FAIL chaos seed_%llu (%s semantics)\n%s\n",
                       static_cast<unsigned long long>(seed),
                       minimax ? "minimax" : "nor", chaos.summary().c_str());
          const std::string prefix =
              (minimax ? std::string("mm_") : std::string("nor_")) + "chaos_seed_" +
              std::to_string(seed);
          try {
            const auto path = dump_corpus_tree(opt.dump, prefix + ".tree", t);
            std::fprintf(stderr, "  tree (%zu nodes) -> %s\n", t.size(),
                         path.c_str());
          } catch (const std::exception& e) {
            std::fprintf(stderr, "  (failed to dump counterexample: %s)\n",
                         e.what());
          }
        }
      }
      if (!opt.quiet && (i + 1) % 100 == 0)
        std::printf("%s: %llu/%llu trees checked (last family: %s)\n",
                    minimax ? "minimax" : "nor",
                    static_cast<unsigned long long>(i + 1),
                    static_cast<unsigned long long>(opt.trees), family.c_str());
    }
  }

  std::printf("fuzz_search: %llu cases, %llu failures\n",
              static_cast<unsigned long long>(cases),
              static_cast<unsigned long long>(failures));
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse_args(argc, argv, opt)) {
    usage(argv[0]);
    return 2;
  }
  if (opt.force_scalar) set_batch_force_scalar(true);
  std::fprintf(stderr, "fuzz_search: batch backend: %s\n",
               batch_backend_name());
  try {
    return run(opt);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "fuzz_search: fatal: %s\n", e.what());
    return 2;
  }
}
