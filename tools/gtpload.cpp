// tools/gtpload.cpp
//
// gtpload — open-loop load generator for gtpard. Models a population of
// independent users: request arrivals are a Poisson process at a fixed
// offered rate (exponential inter-arrival times, dispatched on schedule
// whether or not earlier requests have finished — the open-loop
// discipline that actually reveals overload, unlike closed-loop harnesses
// whose arrival rate collapses with the server), mixed over request
// classes (SOLVE vs alpha-beta, small vs huge trees, tight vs loose
// deadlines).
//
// Every response is differentially checked against locally precomputed
// ground truth (the workload trees are generated client-side, so the true
// root value is known): an exact response must equal it, a bound must
// contain it — a violation is a wrong answer and fails the gate. Sheds
// and drain notices count as errors (they are *correct* overload
// behaviour, priced into goodput, not correctness failures).
//
// Chaos mode (--chaos): every client connection is armed with a seeded
// NetFaultPlan (check/net_faults.hpp) that splits, delays, and resets its
// own byte stream. Each dispatched request carries an idempotency key;
// when injected resets kill a connection, the dispatcher redials it and
// retransmits the pendings under their original request ids and keys, so
// the server's dedupe map must answer each arrival exactly once. The
// harness counts reconnects, redial failures, retransmissions, and —
// the gate's teeth — duplicate final frames (a request id answered again
// after it already completed). Corruption is deliberately NOT injected
// here: the wire protocol carries no checksum, so a flipped payload bit
// is an undetectable client-side mutation that would trip the wrong-
// answer gate without any server fault; corruption coverage lives in the
// codec suites (tests/test_net_protocol.cpp) where the expectation is a
// clean WireFormatError.
//
// Output: one sweep point per offered rate with p50/p99/p99.9 latency,
// goodput (correct completions per second), shed/error/timeout rates —
// plus reconnect/resend/duplicate columns under chaos — printed as a
// table and written to BENCH_service.json, with a final server-side
// counter snapshot (kStatsReq) embedded as "server". With --check, exits
// non-zero on any wrong answer or on a p99 above --gate-p99-ms at the
// lowest (modest) offered rate; under --chaos the p99 gate is replaced
// by the resilience gate: zero wrong answers, zero duplicate finals,
// completions > 0, and server dedupe_hits > 0 (retries actually
// exercised the at-most-once path).
//
// Usage:
//   gtpload (--tcp HOST:PORT | --unix PATH)
//           [--rps R1,R2,...]    offered-load sweep (default 150,600,2400)
//           [--duration-s S]     seconds per point (default 10)
//           [--conns C]          client connections (default 4)
//           [--seed N]           workload + arrival seed (default 1)
//           [--json PATH]        results file (default BENCH_service.json)
//           [--check]            enforce gates (wrong answers, p99)
//           [--gate-p99-ms X]    p99 gate at the lowest rate (default 250)
//           [--quick]            3s per point
//           [--chaos]            arm socket fault injection on every conn
//           [--chaos-seed N]     fault schedule seed (default --seed)
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <optional>
#include <random>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "bench_util.hpp"  // gtpar::bench::percentile
#include "gtpar/check/net_faults.hpp"
#include "gtpar/engine/api.hpp"
#include "gtpar/net/client.hpp"
#include "gtpar/tree/generators.hpp"
#include "gtpar/tree/serialization.hpp"
#include "gtpar/tree/values.hpp"

namespace gtpar::load {

using Clock = std::chrono::steady_clock;

// --- Workload classes. ------------------------------------------------------

/// One request class of the mixed workload. Trees are generated (and
/// ground-truthed) locally per class from the seed, then reused round-robin
/// across arrivals — the wire payload is the pre-encoded request.
struct RequestClass {
  const char* name;
  bool minimax;
  double weight;               // relative arrival share
  Algorithm algorithm;
  unsigned width;
  unsigned d, n;               // uniform tree shape
  std::uint64_t leaf_cost_ns;  // simulated evaluator latency (sleep model)
  std::uint64_t deadline_ns;   // 0 = none
};

constexpr RequestClass kClasses[] = {
    // Small trees, cheap leaves: the latency-sensitive interactive mix.
    {"solve-small", false, 0.35, Algorithm::kFlatSolve, 1, 2, 6, 0, 0},
    {"ab-small", true, 0.25, Algorithm::kFlatAb, 1, 3, 4, 0, 0},
    // Huge trees on the parallel cascades with simulated leaf latency and
    // a loose deadline: the batch mix that actually loads the workers.
    {"solve-huge", false, 0.15, Algorithm::kMtParallelSolve, 2, 2, 10, 2000,
     500'000'000},
    {"ab-huge", true, 0.15, Algorithm::kMtParallelAb, 2, 2, 10, 2000,
     500'000'000},
    // Huge tree under a *tight* deadline: exercises anytime degradation
    // under load (a correct answer is exact OR a bound containing truth).
    {"ab-tight", true, 0.10, Algorithm::kMtParallelAb, 2, 2, 10, 2000,
     5'000'000},
};
constexpr std::size_t kNumClasses = sizeof(kClasses) / sizeof(kClasses[0]);
constexpr std::size_t kTreesPerClass = 4;

struct PreparedRequest {
  net::WireRequest wire;
  Value truth = 0;
  bool minimax = false;
  std::size_t cls = 0;
};

std::vector<PreparedRequest> prepare_workload(std::uint64_t seed) {
  std::vector<PreparedRequest> out;
  for (std::size_t c = 0; c < kNumClasses; ++c) {
    const RequestClass& rc = kClasses[c];
    for (std::size_t k = 0; k < kTreesPerClass; ++k) {
      const std::uint64_t tree_seed = hash_combine(seed, c * 64 + k + 1);
      Tree t = rc.minimax
                   ? make_uniform_iid_minimax(rc.d, rc.n, -100, 100, tree_seed)
                   : make_uniform_iid_nor(rc.d, rc.n, 0.618, tree_seed);
      PreparedRequest p;
      p.minimax = rc.minimax;
      p.cls = c;
      p.truth = rc.minimax ? minimax_value(t) : Value(nor_value(t) ? 1 : 0);
      p.wire.algorithm = static_cast<std::uint8_t>(rc.algorithm);
      p.wire.width = rc.width;
      p.wire.anytime = true;
      p.wire.leaf_cost_ns = rc.leaf_cost_ns;
      p.wire.cost_model = 1;  // LeafCostModel::kSleep: latency-bound leaves
      p.wire.deadline_ns = rc.deadline_ns;
      p.wire.tree_text = to_string(t);
      out.push_back(std::move(p));
    }
  }
  return out;
}

// --- Chaos configuration. ---------------------------------------------------

struct ChaosConfig {
  bool enabled = false;
  std::uint64_t seed = 1;

  /// The per-connection fault schedule. Partial transfers are common
  /// (the codec-resumption workhorse), short delays shape timing, and a
  /// low reset rate supplies the transport losses that force the client
  /// through the reconnect + dedupe path. No corruption (file comment).
  check::NetFaultPlan plan_for(double rps, unsigned conn_index) const {
    check::NetFaultPlan plan;
    plan.seed = hash_combine(
        hash_combine(seed, static_cast<std::uint64_t>(rps)), conn_index + 1);
    plan.partial_rate = 0.15;
    plan.max_partial_chunk = 7;
    plan.delay_rate = 0.05;
    plan.delay_ns = 2'000'000;  // 2 ms
    plan.reset_rate = 0.004;
    return plan;
  }
};

// --- Response correctness. --------------------------------------------------

/// A response is *wrong* iff it makes a claim inconsistent with ground
/// truth: an exact value that differs, or a bound that excludes it.
/// (kFailed claims nothing; NOR has no one-sided bounds, so any NOR bound
/// frame is itself a protocol violation.)
bool response_wrong(const net::WireResult& r, const PreparedRequest& p) {
  switch (static_cast<Completeness>(r.completeness)) {
    case Completeness::kExact:
      return r.value != p.truth;
    case Completeness::kLowerBound:
      return !p.minimax || r.value > p.truth;
    case Completeness::kUpperBound:
      return !p.minimax || r.value < p.truth;
    case Completeness::kFailed:
      return false;
  }
  return true;
}

// --- Per-point collection. --------------------------------------------------

struct Pending {
  Clock::time_point sent;
  std::size_t req_idx;    // into the prepared workload
  bool warmup;
  std::uint64_t key = 0;  // idempotency key (chaos mode; 0 = none)
};

struct ClassTally {
  std::uint64_t sent = 0, ok = 0, wrong = 0, shed = 0, errors = 0,
                timeouts = 0, degraded = 0;
  std::vector<double> latency_ms;  // completed, post-warmup
};

struct PointResult {
  double offered_rps = 0;
  double achieved_send_rps = 0;
  double duration_s = 0;
  std::uint64_t sent = 0, completed = 0, ok = 0, wrong = 0, shed = 0,
                 errors = 0, timeouts = 0, degraded = 0;
  // Network-resilience tallies (populated under --chaos; the failure
  // columns stay visible either way so transport trouble is never
  // folded into "errors" silently).
  std::uint64_t reconnects = 0;        ///< successful redials
  std::uint64_t conn_failures = 0;     ///< failed connect/redial attempts
  std::uint64_t resent = 0;            ///< pendings retransmitted on redial
  std::uint64_t duplicate_finals = 0;  ///< finals for already-answered ids
  std::uint64_t injected_resets = 0;   ///< fault-plan resets actually fired
  double p50_ms = 0, p99_ms = 0, p999_ms = 0, goodput_rps = 0;
  std::vector<ClassTally> per_class;
};

using gtpar::bench::percentile;

/// One client connection with its receiver thread and pending map.
struct Conn {
  std::unique_ptr<net::ServiceClient> client;
  std::thread receiver;
  std::mutex mu;
  std::unordered_map<std::uint64_t, Pending> pending;
  /// Ids already answered, for spotting duplicate finals (chaos mode).
  std::unordered_set<std::uint64_t> completed_ids;
  std::unique_ptr<check::NetFaultState> faults;
  /// Set by the receiver on transport loss; cleared by recovery.
  std::atomic<bool> broken{false};
  std::uint64_t next_id = 1;  // dispatcher-only
};

struct Endpoint {
  bool use_unix = false;
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  std::string path;

  std::unique_ptr<net::ServiceClient> make_client() const {
    net::ClientOptions opt;
    opt.connect_timeout_ns = 2'000'000'000;  // a redial must not hang forever
    return std::make_unique<net::ServiceClient>(
        use_unix ? net::ServiceClient::connect_unix(path, opt)
                 : net::ServiceClient::connect_tcp(host, port, opt));
  }
};

namespace {

/// Spawn (or respawn, after recovery) the receiver draining one
/// connection's frames into the shared tallies.
void start_receiver(Conn* c, const std::vector<PreparedRequest>& workload,
                    PointResult& res, std::mutex& tally_mu,
                    std::atomic<bool>& done) {
  c->receiver = std::thread([c, &workload, &res, &tally_mu, &done] {
    try {
      for (;;) {
        auto f = c->client->read_frame();
        if (!f) {
          // Clean close mid-run (idle reap, slow-peer kill, injected
          // shutdown): recoverable transport loss, not end-of-point.
          if (!done.load()) c->broken.store(true);
          break;
        }
        const auto now = Clock::now();
        if (f->header.type != net::FrameType::kResult &&
            f->header.type != net::FrameType::kError)
          continue;  // goodbye/pong/partial: not a completion
        Pending p;
        bool duplicate = false;
        {
          std::lock_guard<std::mutex> lock(c->mu);
          auto it = c->pending.find(f->header.request_id);
          if (it == c->pending.end()) {
            // Stale (timed out) — unless we already counted a final for
            // this id, in which case the server double-answered: the
            // exactly-once violation the chaos gate exists to catch.
            duplicate = c->completed_ids.count(f->header.request_id) != 0;
            if (!duplicate) continue;
          } else {
            p = it->second;
            c->pending.erase(it);
            c->completed_ids.insert(f->header.request_id);
          }
        }
        if (duplicate) {
          std::lock_guard<std::mutex> lock(tally_mu);
          res.duplicate_finals += 1;
          continue;
        }
        const PreparedRequest& req = workload[p.req_idx];
        const double ms =
            std::chrono::duration<double, std::milli>(now - p.sent).count();
        std::lock_guard<std::mutex> lock(tally_mu);
        ClassTally& ct = res.per_class[req.cls];
        res.completed += 1;
        if (f->header.type == net::FrameType::kError) {
          const auto err =
              net::decode_error(f->payload.data(), f->payload.size());
          if (err.code == net::ErrorCode::kOverloaded) {
            res.shed += 1;
            ct.shed += 1;
          } else {
            res.errors += 1;
            ct.errors += 1;
          }
          continue;
        }
        const auto wres =
            net::decode_result(f->payload.data(), f->payload.size());
        if (response_wrong(wres, req)) {
          res.wrong += 1;
          ct.wrong += 1;
          continue;
        }
        if (static_cast<Completeness>(wres.completeness) !=
            Completeness::kExact) {
          res.degraded += 1;
          ct.degraded += 1;
        }
        res.ok += 1;
        ct.ok += 1;
        if (!p.warmup) ct.latency_ms.push_back(ms);
      }
    } catch (const std::exception&) {
      // Transport failure mid-point. Under chaos the dispatcher redials
      // and retransmits; otherwise remaining pendings become timeouts.
      c->broken.store(true);
    }
  });
}

/// Dispatcher-side recovery of a broken connection: join the dead
/// receiver, redial (bounded attempts, counted by the client), respawn
/// the receiver, and retransmit every pending request under its original
/// request id and idempotency key — if the first copy reached the server,
/// the dedupe map replays or retargets instead of recomputing.
bool recover(Conn* c, const std::vector<PreparedRequest>& workload,
             PointResult& res, std::mutex& tally_mu, std::atomic<bool>& done) {
  if (c->receiver.joinable()) c->receiver.join();
  bool dialed = false;
  for (int attempt = 0; attempt < 6 && !dialed; ++attempt) {
    try {
      c->client->reconnect();
      dialed = true;
    } catch (const std::exception&) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2 << attempt));
    }
  }
  if (!dialed) return false;
  c->broken.store(false);
  start_receiver(c, workload, res, tally_mu, done);

  std::vector<std::pair<std::uint64_t, Pending>> again;
  {
    std::lock_guard<std::mutex> lock(c->mu);
    again.assign(c->pending.begin(), c->pending.end());
  }
  // Oldest first: the requests the server most likely already holds.
  std::sort(again.begin(), again.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::uint64_t resent = 0;
  for (const auto& [id, p] : again) {
    net::WireRequest w = workload[p.req_idx].wire;
    w.idempotency_key = p.key;
    try {
      c->client->send_request(w, id);
      resent += 1;
    } catch (const std::exception&) {
      c->broken.store(true);  // recovered again on a later visit
      break;
    }
  }
  std::lock_guard<std::mutex> tlock(tally_mu);
  res.resent += resent;
  return true;
}

}  // namespace

PointResult run_point(const Endpoint& ep,
                      const std::vector<PreparedRequest>& workload,
                      double rps, double duration_s, unsigned conns,
                      std::uint64_t seed, const ChaosConfig& chaos) {
  PointResult res;
  res.offered_rps = rps;
  res.duration_s = duration_s;
  res.per_class.resize(kNumClasses);

  std::mutex tally_mu;  // guards res counters + per_class from receivers
  std::atomic<bool> done{false};

  std::vector<std::unique_ptr<Conn>> pool;
  for (unsigned i = 0; i < conns; ++i) {
    auto c = std::make_unique<Conn>();
    c->client = ep.make_client();
    if (chaos.enabled) {
      c->faults =
          std::make_unique<check::NetFaultState>(chaos.plan_for(rps, i));
      // The hook survives reconnects: redialed sockets are re-armed.
      c->client->set_fault_hook(c->faults.get());
    }
    pool.push_back(std::move(c));
  }
  for (auto& cp : pool)
    start_receiver(cp.get(), workload, res, tally_mu, done);

  // Open-loop dispatcher: arrivals fire on the Poisson schedule no matter
  // how the server is doing.
  std::mt19937_64 rng(hash_combine(seed, static_cast<std::uint64_t>(rps)));
  std::exponential_distribution<double> interarrival(rps);
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  const auto start = Clock::now();
  const auto end = start + std::chrono::duration_cast<Clock::duration>(
                               std::chrono::duration<double>(duration_s));
  const auto warmup_end =
      start + std::chrono::duration_cast<Clock::duration>(
                  std::chrono::duration<double>(
                      std::min(duration_s * 0.1, 1.0)));
  auto next_arrival = start;
  std::size_t conn_rr = 0;
  std::uint64_t sent = 0;

  // Cumulative class weights for the arrival mix.
  double weights[kNumClasses];
  double total_w = 0;
  for (std::size_t c = 0; c < kNumClasses; ++c) {
    total_w += kClasses[c].weight;
    weights[c] = total_w;
  }

  while (next_arrival < end) {
    std::this_thread::sleep_until(next_arrival);
    const double pick = unit(rng) * total_w;
    std::size_t cls = 0;
    while (cls + 1 < kNumClasses && pick > weights[cls]) ++cls;
    const std::size_t req_idx =
        cls * kTreesPerClass + static_cast<std::size_t>(rng() % kTreesPerClass);
    Conn* c = pool[conn_rr % pool.size()].get();
    conn_rr += 1;
    // A connection the receiver marked broken is redialed in the arrival
    // gap (best-effort: on failure the send below records the trouble).
    if (chaos.enabled && c->broken.load())
      recover(c, workload, res, tally_mu, done);
    const auto now = Clock::now();
    // Register the pending entry *before* the bytes go out: the server
    // can answer faster than this thread resumes, and the receiver must
    // find the entry or the response is miscounted as stale.
    const std::uint64_t id = c->next_id++;
    const std::uint64_t key = chaos.enabled ? c->client->make_key() : 0;
    {
      std::lock_guard<std::mutex> lock(c->mu);
      c->pending[id] = Pending{now, req_idx, now < warmup_end, key};
    }
    try {
      if (chaos.enabled) {
        net::WireRequest w = workload[req_idx].wire;
        w.idempotency_key = key;
        c->client->send_request(w, id);
      } else {
        c->client->send_request(workload[req_idx].wire, id);
      }
      sent += 1;
      std::lock_guard<std::mutex> tlock(tally_mu);
      res.per_class[cls].sent += 1;
    } catch (const std::exception&) {
      if (chaos.enabled) {
        // The arrival stands: the pending stays registered and the next
        // recovery pass retransmits it under its key.
        c->broken.store(true);
        sent += 1;
        std::lock_guard<std::mutex> tlock(tally_mu);
        res.per_class[cls].sent += 1;
      } else {
        {
          std::lock_guard<std::mutex> lock(c->mu);
          c->pending.erase(id);
        }
        std::lock_guard<std::mutex> tlock(tally_mu);
        res.errors += 1;
        res.per_class[cls].errors += 1;
      }
    }
    next_arrival += std::chrono::duration_cast<Clock::duration>(
        std::chrono::duration<double>(interarrival(rng)));
  }
  const double elapsed_s =
      std::chrono::duration<double>(Clock::now() - start).count();
  res.sent = sent;
  res.achieved_send_rps = elapsed_s > 0 ? static_cast<double>(sent) / elapsed_s
                                        : 0.0;

  // Grace period: let in-flight responses land (loose deadlines are
  // 500ms; 3s covers queueing on the overloaded point). Under chaos,
  // keep recovering broken connections so their pendings can still be
  // answered (via dedupe) instead of decaying into timeouts.
  const auto grace_end = Clock::now() + std::chrono::seconds(3);
  for (;;) {
    std::size_t outstanding = 0;
    for (auto& cp : pool) {
      if (chaos.enabled && cp->broken.load())
        recover(cp.get(), workload, res, tally_mu, done);
      std::lock_guard<std::mutex> lock(cp->mu);
      outstanding += cp->pending.size();
    }
    if (outstanding == 0 || Clock::now() >= grace_end) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  done.store(true);
  for (auto& cp : pool) {
    {
      std::lock_guard<std::mutex> lock(cp->mu);
      std::lock_guard<std::mutex> tlock(tally_mu);
      for (const auto& [id, p] : cp->pending) {
        res.timeouts += 1;
        res.per_class[workload[p.req_idx].cls].timeouts += 1;
      }
      cp->pending.clear();
    }
    // shutdown() (not close()) wakes a receiver blocked in read().
    cp->client->finish_sending();
    if (cp->receiver.joinable()) cp->receiver.join();
    cp->client->close();
    res.reconnects += cp->client->reconnects();
    res.conn_failures += cp->client->connect_failures();
    if (cp->faults) res.injected_resets += cp->faults->resets();
  }

  std::vector<double> all;
  for (auto& ct : res.per_class)
    all.insert(all.end(), ct.latency_ms.begin(), ct.latency_ms.end());
  res.p50_ms = percentile(all, 0.50);
  res.p99_ms = percentile(all, 0.99);
  res.p999_ms = percentile(all, 0.999);
  res.goodput_rps =
      elapsed_s > 0 ? static_cast<double>(res.ok) / elapsed_s : 0.0;
  return res;
}

// --- Server stats snapshot. -------------------------------------------------

/// One clean (fault-free) connection asking the server for its counter
/// snapshot, for the JSON report and the chaos dedupe gate.
std::optional<net::WireStats> fetch_server_stats(const Endpoint& ep) {
  try {
    auto c = ep.make_client();
    c->send_stats_request(1);
    for (int i = 0; i < 16; ++i) {
      auto f = c->read_frame();
      if (!f) break;
      if (f->header.type == net::FrameType::kStats)
        return net::decode_stats(f->payload.data(), f->payload.size());
    }
  } catch (const std::exception&) {
    // Server gone or draining: the report simply omits the snapshot.
  }
  return std::nullopt;
}

// --- Reporting. -------------------------------------------------------------

void write_json(const char* path, const std::vector<PointResult>& points,
                unsigned conns, std::uint64_t seed, const ChaosConfig& chaos,
                const std::optional<net::WireStats>& server) {
  std::FILE* f = std::fopen(path, "w");
  if (!f) {
    std::fprintf(stderr, "cannot open %s for writing\n", path);
    return;
  }
  std::fprintf(f, "{\n  \"benchmark\": \"service_load\",\n");
  std::fprintf(f,
               "  \"config\": {\"connections\": %u, \"seed\": %llu, "
               "\"arrivals\": \"open-loop poisson\", \"chaos\": %s, "
               "\"chaos_seed\": %llu, \"classes\": [",
               conns, static_cast<unsigned long long>(seed),
               chaos.enabled ? "true" : "false",
               static_cast<unsigned long long>(chaos.seed));
  for (std::size_t c = 0; c < kNumClasses; ++c)
    std::fprintf(f, "%s\"%s\"", c ? ", " : "", kClasses[c].name);
  std::fprintf(f, "]},\n");
  std::fprintf(f, "  \"results\": [\n");
  for (std::size_t i = 0; i < points.size(); ++i) {
    const PointResult& p = points[i];
    std::fprintf(
        f,
        "    {\"offered_rps\": %.0f, \"achieved_send_rps\": %.1f, "
        "\"duration_s\": %.1f, \"sent\": %llu, \"completed\": %llu, "
        "\"ok\": %llu, \"wrong\": %llu, \"degraded\": %llu, "
        "\"shed\": %llu, \"errors\": %llu, \"timeouts\": %llu, "
        "\"reconnects\": %llu, \"conn_failures\": %llu, "
        "\"resent\": %llu, \"duplicate_finals\": %llu, "
        "\"injected_resets\": %llu, "
        "\"p50_ms\": %.2f, \"p99_ms\": %.2f, \"p999_ms\": %.2f, "
        "\"goodput_rps\": %.1f, \"shed_rate\": %.4f, "
        "\"per_class\": [",
        p.offered_rps, p.achieved_send_rps, p.duration_s,
        static_cast<unsigned long long>(p.sent),
        static_cast<unsigned long long>(p.completed),
        static_cast<unsigned long long>(p.ok),
        static_cast<unsigned long long>(p.wrong),
        static_cast<unsigned long long>(p.degraded),
        static_cast<unsigned long long>(p.shed),
        static_cast<unsigned long long>(p.errors),
        static_cast<unsigned long long>(p.timeouts),
        static_cast<unsigned long long>(p.reconnects),
        static_cast<unsigned long long>(p.conn_failures),
        static_cast<unsigned long long>(p.resent),
        static_cast<unsigned long long>(p.duplicate_finals),
        static_cast<unsigned long long>(p.injected_resets), p.p50_ms,
        p.p99_ms, p.p999_ms, p.goodput_rps,
        p.sent ? static_cast<double>(p.shed) / static_cast<double>(p.sent)
               : 0.0);
    for (std::size_t c = 0; c < p.per_class.size(); ++c) {
      const ClassTally& ct = p.per_class[c];
      std::vector<double> lat = ct.latency_ms;
      std::fprintf(
          f,
          "%s{\"class\": \"%s\", \"sent\": %llu, \"ok\": %llu, "
          "\"wrong\": %llu, \"degraded\": %llu, \"shed\": %llu, "
          "\"p50_ms\": %.2f, \"p99_ms\": %.2f}",
          c ? ", " : "", kClasses[c].name,
          static_cast<unsigned long long>(ct.sent),
          static_cast<unsigned long long>(ct.ok),
          static_cast<unsigned long long>(ct.wrong),
          static_cast<unsigned long long>(ct.degraded),
          static_cast<unsigned long long>(ct.shed), percentile(lat, 0.50),
          percentile(lat, 0.99));
    }
    std::fprintf(f, "]}%s\n", i + 1 < points.size() ? "," : "");
  }
  std::fprintf(f, "  ]");
  if (server) {
    const net::WireStats& s = *server;
    std::fprintf(
        f,
        ",\n  \"server\": {\"connections_accepted\": %llu, "
        "\"requests_received\": %llu, \"results_sent\": %llu, "
        "\"errors_sent\": %llu, \"requests_shed\": %llu, "
        "\"bad_frames\": %llu, \"accepts_dropped\": %llu, "
        "\"partials_dropped\": %llu, \"slow_peer_disconnects\": %llu, "
        "\"idle_reaped\": %llu, \"conn_capped\": %llu, "
        "\"dedupe_hits\": %llu, \"dedupe_replays\": %llu}",
        static_cast<unsigned long long>(s.connections_accepted),
        static_cast<unsigned long long>(s.requests_received),
        static_cast<unsigned long long>(s.results_sent),
        static_cast<unsigned long long>(s.errors_sent),
        static_cast<unsigned long long>(s.requests_shed),
        static_cast<unsigned long long>(s.bad_frames),
        static_cast<unsigned long long>(s.accepts_dropped),
        static_cast<unsigned long long>(s.partials_dropped),
        static_cast<unsigned long long>(s.slow_peer_disconnects),
        static_cast<unsigned long long>(s.idle_reaped),
        static_cast<unsigned long long>(s.conn_capped),
        static_cast<unsigned long long>(s.dedupe_hits),
        static_cast<unsigned long long>(s.dedupe_replays));
  }
  std::fprintf(f, "\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path);
}

}  // namespace gtpar::load

int main(int argc, char** argv) {
  using namespace gtpar::load;

  Endpoint ep;
  bool have_endpoint = false;
  std::vector<double> sweep = {150, 600, 2400};
  double duration_s = 10;
  unsigned conns = 4;
  std::uint64_t seed = 1;
  const char* json_path = "BENCH_service.json";
  bool check = false;
  double gate_p99_ms = 250;
  ChaosConfig chaos;
  bool chaos_seed_set = false;

  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", a);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(a, "--tcp") == 0) {
      const std::string hp = next();
      const auto colon = hp.rfind(':');
      if (colon == std::string::npos) {
        std::fprintf(stderr, "--tcp needs HOST:PORT\n");
        return 2;
      }
      ep.host = hp.substr(0, colon);
      ep.port = static_cast<std::uint16_t>(std::atoi(hp.c_str() + colon + 1));
      have_endpoint = true;
    } else if (std::strcmp(a, "--unix") == 0) {
      ep.use_unix = true;
      ep.path = next();
      have_endpoint = true;
    } else if (std::strcmp(a, "--rps") == 0) {
      sweep.clear();
      const char* v = next();
      for (const char* p = v; *p;) {
        sweep.push_back(std::strtod(p, const_cast<char**>(&p)));
        if (*p == ',') ++p;
      }
    } else if (std::strcmp(a, "--duration-s") == 0) {
      duration_s = std::strtod(next(), nullptr);
    } else if (std::strcmp(a, "--conns") == 0) {
      conns = static_cast<unsigned>(std::atoi(next()));
    } else if (std::strcmp(a, "--seed") == 0) {
      seed = static_cast<std::uint64_t>(std::atoll(next()));
    } else if (std::strcmp(a, "--json") == 0) {
      json_path = next();
    } else if (std::strcmp(a, "--check") == 0) {
      check = true;
    } else if (std::strcmp(a, "--gate-p99-ms") == 0) {
      gate_p99_ms = std::strtod(next(), nullptr);
    } else if (std::strcmp(a, "--quick") == 0) {
      duration_s = 3;
    } else if (std::strcmp(a, "--chaos") == 0) {
      chaos.enabled = true;
    } else if (std::strcmp(a, "--chaos-seed") == 0) {
      chaos.seed = static_cast<std::uint64_t>(std::atoll(next()));
      chaos_seed_set = true;
    } else {
      std::fprintf(stderr,
                   "usage: gtpload (--tcp HOST:PORT | --unix PATH) "
                   "[--rps R1,R2,...] [--duration-s S] [--conns C] "
                   "[--seed N] [--json PATH] [--check] [--gate-p99-ms X] "
                   "[--quick] [--chaos] [--chaos-seed N]\n");
      return 2;
    }
  }
  if (!have_endpoint || sweep.empty()) {
    std::fprintf(stderr, "gtpload: endpoint and at least one --rps required\n");
    return 2;
  }
  if (!chaos_seed_set) chaos.seed = seed;

  const auto workload = prepare_workload(seed);
  std::printf("gtpload: %zu prepared requests across %zu classes; sweep:",
              workload.size(), kNumClasses);
  for (double r : sweep) std::printf(" %.0frps", r);
  std::printf(" x %.0fs, %u connections%s\n", duration_s, conns,
              chaos.enabled ? ", CHAOS armed" : "");

  std::vector<PointResult> points;
  try {
    for (double rps : sweep) {
      std::printf("-- offered %.0f rps...\n", rps);
      std::fflush(stdout);
      points.push_back(
          run_point(ep, workload, rps, duration_s, conns, seed, chaos));
      const PointResult& p = points.back();
      std::printf(
          "   sent=%llu ok=%llu wrong=%llu degraded=%llu shed=%llu "
          "errors=%llu timeouts=%llu | p50=%.2fms p99=%.2fms p99.9=%.2fms "
          "goodput=%.1f rps\n",
          static_cast<unsigned long long>(p.sent),
          static_cast<unsigned long long>(p.ok),
          static_cast<unsigned long long>(p.wrong),
          static_cast<unsigned long long>(p.degraded),
          static_cast<unsigned long long>(p.shed),
          static_cast<unsigned long long>(p.errors),
          static_cast<unsigned long long>(p.timeouts), p.p50_ms, p.p99_ms,
          p.p999_ms, p.goodput_rps);
      if (chaos.enabled)
        std::printf(
            "   chaos: resets=%llu reconnects=%llu conn_failures=%llu "
            "resent=%llu duplicate_finals=%llu\n",
            static_cast<unsigned long long>(p.injected_resets),
            static_cast<unsigned long long>(p.reconnects),
            static_cast<unsigned long long>(p.conn_failures),
            static_cast<unsigned long long>(p.resent),
            static_cast<unsigned long long>(p.duplicate_finals));
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "gtpload: fatal: %s\n", e.what());
    return 1;
  }

  const auto server = fetch_server_stats(ep);
  write_json(json_path, points, conns, seed, chaos, server);

  if (check) {
    int failures = 0;
    std::uint64_t total_completed = 0, total_dups = 0;
    for (const auto& p : points) {
      total_completed += p.completed;
      total_dups += p.duplicate_finals;
      if (p.wrong != 0) {
        std::fprintf(stderr,
                     "GATE FAIL: %llu wrong answers at offered %.0f rps\n",
                     static_cast<unsigned long long>(p.wrong), p.offered_rps);
        failures += 1;
      }
    }
    if (total_completed == 0) {
      std::fprintf(stderr, "GATE FAIL: no responses completed\n");
      failures += 1;
    }
    if (chaos.enabled) {
      // Resilience gate: the fault schedule must have actually pushed
      // requests through the retry path, and the server must have
      // answered every one of them exactly once.
      if (total_dups != 0) {
        std::fprintf(stderr,
                     "GATE FAIL: %llu duplicate final frames under chaos\n",
                     static_cast<unsigned long long>(total_dups));
        failures += 1;
      }
      if (!server) {
        std::fprintf(stderr, "GATE FAIL: no server stats snapshot\n");
        failures += 1;
      } else if (server->dedupe_hits == 0) {
        std::fprintf(stderr,
                     "GATE FAIL: chaos run exercised no dedupe hits "
                     "(retry path untested — raise rates or duration)\n");
        failures += 1;
      }
      if (failures) return 1;
      std::printf(
          "gtpload: chaos gates passed (zero wrong answers, zero duplicate "
          "finals, dedupe_hits=%llu)\n",
          static_cast<unsigned long long>(server->dedupe_hits));
    } else {
      if (!points.empty() && points.front().p99_ms > gate_p99_ms) {
        std::fprintf(stderr,
                     "GATE FAIL: p99 %.2fms > %.2fms at the modest rate "
                     "(%.0f rps)\n",
                     points.front().p99_ms, gate_p99_ms,
                     points.front().offered_rps);
        failures += 1;
      }
      if (failures) return 1;
      std::printf("gtpload: all gates passed (zero wrong answers, p99 "
                  "%.2fms <= %.2fms)\n",
                  points.front().p99_ms, gate_p99_ms);
    }
  }
  return 0;
}
